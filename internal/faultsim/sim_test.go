package faultsim

import (
	"math/rand"
	"testing"

	"wcm3d/internal/faults"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

func mk(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString("f", src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestGoodSimMatchesScalarEvaluate(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 300, FFs: 10, PIs: 6, POs: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	rng := rand.New(rand.NewSource(1))
	pats := make([]Pattern, 64)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	block, err := s.GoodSim(pats)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check a handful of patterns against the scalar evaluator.
	for _, k := range []int{0, 13, 63} {
		assign := map[netlist.SignalID]bool{}
		for j, sig := range s.Sources {
			assign[sig] = pats[k].Get(j)
		}
		want, err := n.Evaluate(assign)
		if err != nil {
			t.Fatal(err)
		}
		for i := range n.Gates {
			id := netlist.SignalID(i)
			v, known := block.Val(id, k)
			if !known {
				continue // X from TSV pads; scalar sim has no X notion
			}
			if v != want[id] {
				t.Fatalf("pattern %d signal %s: parallel=%v scalar=%v", k, n.NameOf(id), v, want[id])
			}
		}
	}
}

func TestGoodSimXSemantics(t *testing.T) {
	// TSV pad t is X. AND(t,0)=0 known, OR(t,1)=1 known, XOR(t,a)=X,
	// MUX(x, a, a) = a known.
	n := mk(t, `
INPUT(a)
INPUT(zero_src)
TSV_IN(t)
g_and = AND(t, n_zero)
g_or = OR(t, n_one)
g_xor = XOR(t, a)
g_mux = MUX(t, a, a)
n_zero = CONST0()
n_one = CONST1()
OUTPUT(g_and)
OUTPUT(g_or)
OUTPUT(g_xor)
OUTPUT(g_mux)
`)
	s := New(n)
	p := NewPattern(s.NumSources())
	ai, _ := s.SourceIndex(mustID(t, n, "a"))
	p.Set(ai, true)
	b, err := s.GoodSim([]Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, wantV, wantKnown bool) {
		t.Helper()
		v, k := b.Val(mustID(t, n, name), 0)
		if k != wantKnown || (k && v != wantV) {
			t.Errorf("%s = (v=%v,known=%v), want (v=%v,known=%v)", name, v, k, wantV, wantKnown)
		}
	}
	check("t", false, false)
	check("g_and", false, true) // X & 0 = 0
	check("g_or", true, true)   // X | 1 = 1
	check("g_xor", false, false)
	check("g_mux", true, true) // both mux data inputs equal a=1
}

func mustID(t *testing.T, n *netlist.Netlist, name string) netlist.SignalID {
	t.Helper()
	id, ok := n.SignalByName(name)
	if !ok {
		t.Fatalf("no signal %q", name)
	}
	return id
}

func TestGoodSimRejectsBadBlock(t *testing.T) {
	n := mk(t, "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	s := New(n)
	if _, err := s.GoodSim(nil); err == nil {
		t.Error("empty block should fail")
	}
	pats := make([]Pattern, 65)
	for i := range pats {
		pats[i] = NewPattern(s.NumSources())
	}
	if _, err := s.GoodSim(pats); err == nil {
		t.Error("65-pattern block should fail")
	}
}

// bruteDetect is a scalar reference implementation of single-fault
// detection used to validate the event-driven engine.
func bruteDetect(n *netlist.Netlist, s *Simulator, f faults.Fault, assign map[netlist.SignalID]bool) bool {
	good, err := n.Evaluate(assign)
	if err != nil {
		panic(err)
	}
	faulty := make([]bool, n.NumGates())
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		var v bool
		switch g.Type {
		case netlist.GateConst0:
			v = false
		case netlist.GateConst1:
			v = true
		case netlist.GateInput, netlist.GateTSVIn, netlist.GateDFF:
			v = assign[id]
		default:
			v = scalarEval(g, func(pin int) bool {
				if f.Pin != faults.OutputPin && id == f.Gate && pin == int(f.Pin) {
					return f.StuckAt == 1
				}
				return faulty[g.Fanin[pin]]
			})
		}
		if f.Pin == faults.OutputPin && id == f.Gate {
			v = f.StuckAt == 1
		}
		faulty[id] = v
	}
	// DFF D-pin branch fault: compare the captured value directly.
	if f.Pin != faults.OutputPin && n.TypeOf(f.Gate) == netlist.GateDFF {
		d := n.Gate(f.Gate).Fanin[f.Pin]
		return good[d] != (f.StuckAt == 1)
	}
	for _, obs := range s.ObservedSignals() {
		if good[obs] != faulty[obs] {
			return true
		}
	}
	return false
}

func scalarEval(g *netlist.Gate, in func(int) bool) bool {
	switch g.Type {
	case netlist.GateBuf:
		return in(0)
	case netlist.GateNot:
		return !in(0)
	case netlist.GateAnd, netlist.GateNand:
		v := true
		for i := range g.Fanin {
			v = v && in(i)
		}
		if g.Type == netlist.GateNand {
			return !v
		}
		return v
	case netlist.GateOr, netlist.GateNor:
		v := false
		for i := range g.Fanin {
			v = v || in(i)
		}
		if g.Type == netlist.GateNor {
			return !v
		}
		return v
	case netlist.GateXor, netlist.GateXnor:
		v := false
		for i := range g.Fanin {
			v = v != in(i)
		}
		if g.Type == netlist.GateXnor {
			return !v
		}
		return v
	case netlist.GateMux2:
		if in(0) {
			return in(2)
		}
		return in(1)
	default:
		return false
	}
}

func TestDetectsMatchesBruteForce(t *testing.T) {
	// No TSVs: every source controllable, so scalar 2-valued brute force
	// is exact.
	n, err := netgen.Random(netgen.RandomOptions{Gates: 150, FFs: 8, PIs: 5, POs: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	eng := s.NewEngine()
	rng := rand.New(rand.NewSource(2))
	pats := make([]Pattern, 16)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	block, err := s.GoodSim(pats)
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	for _, f := range list {
		det := eng.Detects(f, block)
		for k := 0; k < len(pats); k++ {
			assign := map[netlist.SignalID]bool{}
			for j, sig := range s.Sources {
				assign[sig] = pats[k].Get(j)
			}
			want := bruteDetect(n, s, f, assign)
			got := det&(1<<uint(k)) != 0
			if got != want {
				t.Fatalf("fault %s pattern %d: engine=%v brute=%v", f.Describe(n), k, got, want)
			}
		}
	}
}

func TestFaultBehindTSVOutUndetectable(t *testing.T) {
	// Logic observable only through an outbound TSV (no wrapper) is
	// untestable pre-bond.
	n := mk(t, `
INPUT(a)
INPUT(b)
hidden = AND(a, b)
visible = OR(a, b)
TSV_OUT(u) = hidden
OUTPUT(z) = visible
`)
	s := New(n)
	eng := s.NewEngine()
	rng := rand.New(rand.NewSource(3))
	pats := make([]Pattern, 8)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	block, err := s.GoodSim(pats)
	if err != nil {
		t.Fatal(err)
	}
	hid := mustID(t, n, "hidden")
	if det := eng.Detects(faults.Fault{Gate: hid, Pin: faults.OutputPin, StuckAt: 0}, block); det != 0 {
		t.Errorf("fault on TSV_OUT-only cone detected (det=%b): outbound TSVs are unobservable pre-bond", det)
	}
	vis := mustID(t, n, "visible")
	if det := eng.Detects(faults.Fault{Gate: vis, Pin: faults.OutputPin, StuckAt: 0}, block); det == 0 {
		t.Error("fault on PO cone should be detectable")
	}
}

func TestFaultBehindFloatingTSVInUndetectable(t *testing.T) {
	// A fault whose activation requires a floating (X) inbound TSV value
	// cannot be definitively detected.
	n := mk(t, `
TSV_IN(t)
INPUT(a)
g = XOR(t, a)
OUTPUT(g)
`)
	s := New(n)
	eng := s.NewEngine()
	p := NewPattern(s.NumSources())
	block, err := s.GoodSim([]Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	g := mustID(t, n, "g")
	if det := eng.Detects(faults.Fault{Gate: g, Pin: faults.OutputPin, StuckAt: 1}, block); det != 0 {
		t.Error("good value is X at the only observation point; detection must not be claimed")
	}
}

func TestDFFCaptureObserves(t *testing.T) {
	// A fault is detected through a flip-flop D pin (scan capture).
	n := mk(t, `
INPUT(a)
g = NOT(a)
q = DFF(g)
OUTPUT(z) = q
`)
	s := New(n)
	if !s.Observed(mustID(t, n, "g")) {
		t.Fatal("D-pin driver must be observed")
	}
	eng := s.NewEngine()
	p := NewPattern(s.NumSources())
	ai, _ := s.SourceIndex(mustID(t, n, "a"))
	p.Set(ai, true) // a=1 -> g=0; s-a-1 detected
	block, err := s.GoodSim([]Pattern{p})
	if err != nil {
		t.Fatal(err)
	}
	g := mustID(t, n, "g")
	if det := eng.Detects(faults.Fault{Gate: g, Pin: faults.OutputPin, StuckAt: 1}, block); det != 1 {
		t.Errorf("det = %b, want detection via scan capture", det)
	}
}

func TestRunCampaign(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 200, FFs: 20, PIs: 6, POs: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	rng := rand.New(rand.NewSource(4))
	pats := make([]Pattern, 256)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	list := faults.CollapsedList(n)
	c, err := s.RunCampaign(pats, list)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumDetected == 0 {
		t.Fatal("random patterns should detect something")
	}
	if c.Coverage() <= 0.45 {
		t.Errorf("random coverage %v suspiciously low for a fully controllable circuit", c.Coverage())
	}
	// FirstDetector consistency.
	for i, d := range c.Detected {
		if d && (c.FirstDetector[i] < 0 || c.FirstDetector[i] >= len(pats)) {
			t.Errorf("fault %d detected but FirstDetector=%d", i, c.FirstDetector[i])
		}
		if !d && c.FirstDetector[i] != -1 {
			t.Errorf("fault %d undetected but FirstDetector=%d", i, c.FirstDetector[i])
		}
		if d && !c.UsefulPattern[c.FirstDetector[i]] {
			t.Errorf("pattern %d first-detected fault %d but not marked useful", c.FirstDetector[i], i)
		}
	}
}

func TestPatternSetGet(t *testing.T) {
	p := NewPattern(130)
	p.Set(129, true)
	p.Set(0, true)
	if !p.Get(129) || !p.Get(0) || p.Get(64) {
		t.Error("pattern bit accessors broken")
	}
	p.Set(129, false)
	if p.Get(129) {
		t.Error("clear failed")
	}
	q := p.Clone()
	q.Set(5, true)
	if p.Get(5) {
		t.Error("clone shares storage")
	}
}

// TestEngineIndependence: two engines over the same simulator must agree,
// and reusing one engine across faults must not leak state.
func TestEngineIndependence(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 150, FFs: 8, PIs: 5, POs: 3, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	rng := rand.New(rand.NewSource(7))
	pats := make([]Pattern, 32)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	block, err := s.GoodSim(pats)
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	e1 := s.NewEngine()
	e2 := s.NewEngine()
	// e1 processes everything in order; e2 processes in reverse. Words
	// must match fault by fault.
	fwd := make([]uint64, len(list))
	for i, f := range list {
		fwd[i] = e1.Detects(f, block)
	}
	for i := len(list) - 1; i >= 0; i-- {
		if got := e2.Detects(list[i], block); got != fwd[i] {
			t.Fatalf("fault %s: fresh-engine word %b != reused-engine %b",
				list[i].Describe(n), got, fwd[i])
		}
	}
	// Detection words never exceed the block mask.
	mask := uint64(1)<<uint(len(pats)) - 1
	for i := range fwd {
		if fwd[i]&^mask != 0 {
			t.Fatalf("detection word %b has bits beyond the %d-pattern mask", fwd[i], len(pats))
		}
	}
}

// TestDetectsAgreesWithCampaign: the campaign's verdicts must match
// per-fault Detects calls.
func TestDetectsAgreesWithCampaign(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 120, FFs: 6, PIs: 4, POs: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	s := New(n)
	rng := rand.New(rand.NewSource(5))
	pats := make([]Pattern, 48)
	for i := range pats {
		pats[i] = s.RandomPattern(rng)
	}
	list := faults.CollapsedList(n)
	camp, err := s.RunCampaign(pats, list)
	if err != nil {
		t.Fatal(err)
	}
	eng := s.NewEngine()
	block, err := s.GoodSim(pats)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range list {
		want := eng.Detects(f, block) != 0
		if camp.Detected[i] != want {
			t.Fatalf("fault %s: campaign=%v direct=%v", f.Describe(n), camp.Detected[i], want)
		}
	}
}
