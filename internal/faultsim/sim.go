// Package faultsim implements three-valued, bit-parallel (64 patterns per
// machine word) full-scan fault simulation — one half of the reproduction's
// stand-in for a commercial ATPG tool.
//
// The simulator views a die the way a pre-bond tester does:
//
//   - controllable: primary inputs and scan flip-flop outputs (the scan
//     chain sets them), plus any test-control cells the DFT editor added;
//   - observable: primary-output pads and scan flip-flop D pins;
//   - inbound TSV pads that no wrapper cell drives are X sources, and
//     outbound TSV ports are not observation points — exactly the
//     pre-bond testability gap the paper's wrapper cells close.
//
// Three-valued (0/1/X) semantics keep the X-propagation honest: a fault is
// counted as detected only when the good and faulty values are both known
// and differ at an observation point.
package faultsim

import (
	"fmt"
	"math/rand"

	"wcm3d/internal/netlist"
)

// Pattern is one test vector: bit j is the value applied to Sources[j].
type Pattern struct {
	bits []uint64
}

// NewPattern returns an all-zero vector for ns sources.
func NewPattern(ns int) Pattern {
	return Pattern{bits: make([]uint64, (ns+63)/64)}
}

// Set assigns source index j.
func (p Pattern) Set(j int, v bool) {
	if v {
		p.bits[j>>6] |= 1 << (uint(j) & 63)
	} else {
		p.bits[j>>6] &^= 1 << (uint(j) & 63)
	}
}

// Get reads source index j.
func (p Pattern) Get(j int) bool {
	return p.bits[j>>6]&(1<<(uint(j)&63)) != 0
}

// Clone copies the vector.
func (p Pattern) Clone() Pattern {
	return Pattern{bits: append([]uint64(nil), p.bits...)}
}

// Simulator holds the static circuit view shared across simulations.
type Simulator struct {
	N *netlist.Netlist
	// Sources are the controllable signals in ascending SignalID order.
	Sources []netlist.SignalID
	// sourceIdx maps a controllable SignalID to its index in Sources.
	sourceIdx map[netlist.SignalID]int
	// observed[sig] reports whether the signal is an observation point.
	observed []bool
	// observedList caches the observed signals.
	observedList []netlist.SignalID

	order   []netlist.SignalID
	fanouts [][]netlist.SignalID
	level   []int32
}

// New builds a simulator with the standard pre-bond test view described in
// the package comment.
func New(n *netlist.Netlist) *Simulator {
	s := &Simulator{
		N:         n,
		sourceIdx: make(map[netlist.SignalID]int),
		observed:  make([]bool, n.NumGates()),
		order:     n.TopoOrder(),
		fanouts:   n.Fanouts(),
		level:     make([]int32, n.NumGates()),
	}
	for i := range n.Gates {
		id := netlist.SignalID(i)
		s.level[i] = int32(n.Level(id))
		switch n.TypeOf(id) {
		case netlist.GateInput, netlist.GateDFF:
			s.sourceIdx[id] = len(s.Sources)
			s.Sources = append(s.Sources, id)
		}
	}
	for _, o := range n.Outputs {
		if o.Class == netlist.PortPO {
			s.observed[o.Signal] = true
		}
	}
	for _, ff := range n.FlipFlops() {
		s.observed[n.Gate(ff).Fanin[0]] = true
	}
	for i, obs := range s.observed {
		if obs {
			s.observedList = append(s.observedList, netlist.SignalID(i))
		}
	}
	return s
}

// NumSources returns the number of controllable signals.
func (s *Simulator) NumSources() int { return len(s.Sources) }

// SourceIndex returns the pattern-bit index of a controllable signal.
func (s *Simulator) SourceIndex(sig netlist.SignalID) (int, bool) {
	i, ok := s.sourceIdx[sig]
	return i, ok
}

// Observed reports whether the signal is an observation point.
func (s *Simulator) Observed(sig netlist.SignalID) bool { return s.observed[sig] }

// ObservedSignals returns all observation points.
func (s *Simulator) ObservedSignals() []netlist.SignalID { return s.observedList }

// RandomPattern draws a uniform random vector.
func (s *Simulator) RandomPattern(rng *rand.Rand) Pattern {
	p := NewPattern(len(s.Sources))
	for i := range p.bits {
		p.bits[i] = rng.Uint64()
	}
	return p
}

// Block is the three-valued simulation state of up to 64 patterns: bit k of
// val[sig]/known[sig] is pattern k's value/known flag on that signal.
type Block struct {
	val, known []uint64
	// NPat is the number of live patterns (low bits).
	NPat int
	mask uint64 // low-NPat bits
}

// Val returns (value, known) of a signal for pattern k.
func (b *Block) Val(sig netlist.SignalID, k int) (bool, bool) {
	bit := uint64(1) << uint(k)
	return b.val[sig]&bit != 0, b.known[sig]&bit != 0
}

// GoodSim simulates up to 64 patterns and returns the block of good-circuit
// values.
func (s *Simulator) GoodSim(patterns []Pattern) (*Block, error) {
	if len(patterns) == 0 || len(patterns) > 64 {
		return nil, fmt.Errorf("faultsim: block must hold 1..64 patterns, got %d", len(patterns))
	}
	ng := s.N.NumGates()
	b := &Block{
		val:   make([]uint64, ng),
		known: make([]uint64, ng),
		NPat:  len(patterns),
	}
	if b.NPat == 64 {
		b.mask = ^uint64(0)
	} else {
		b.mask = (uint64(1) << uint(b.NPat)) - 1
	}
	// Load sources: transpose pattern bits into per-signal words.
	for j, sig := range s.Sources {
		var w uint64
		for k, p := range patterns {
			if p.Get(j) {
				w |= 1 << uint(k)
			}
		}
		b.val[sig] = w
		b.known[sig] = b.mask
	}
	for _, id := range s.order {
		g := s.N.Gate(id)
		switch g.Type {
		case netlist.GateInput, netlist.GateDFF:
			// loaded above
		case netlist.GateTSVIn:
			// Floating pre-bond: X unless the DFT editor rewired it.
			b.val[id], b.known[id] = 0, 0
		case netlist.GateConst0:
			b.val[id], b.known[id] = 0, b.mask
		case netlist.GateConst1:
			b.val[id], b.known[id] = b.mask, b.mask
		default:
			v, kn := evalWord(g, b.val, b.known)
			b.val[id], b.known[id] = v&b.mask, kn&b.mask
		}
	}
	return b, nil
}

// evalWord computes the three-valued output of a gate from fanin words.
func evalWord(g *netlist.Gate, val, known []uint64) (uint64, uint64) {
	return evalWordWith(g, func(_ int, f netlist.SignalID) (uint64, uint64) {
		return val[f], known[f]
	})
}

// evalWordWith computes the gate output fetching fanin values through
// fn(pin, signal); the faulty-machine propagation passes a reader that
// substitutes faulty values inside the affected region (and a forced value
// on the faulted pin).
func evalWordWith(g *netlist.Gate, pinFn func(int, netlist.SignalID) (uint64, uint64)) (uint64, uint64) {
	fn := func(pin int) (uint64, uint64) { return pinFn(pin, g.Fanin[pin]) }
	switch g.Type {
	case netlist.GateBuf:
		return fn(0)
	case netlist.GateNot:
		v, k := fn(0)
		return ^v, k
	case netlist.GateAnd, netlist.GateNand:
		v := ^uint64(0)
		known1 := ^uint64(0) // all fanins known
		known0 := uint64(0)  // any fanin known-0
		for pin := range g.Fanin {
			fv, fk := fn(pin)
			v &= fv
			known1 &= fk
			known0 |= fk &^ fv
		}
		kn := known1 | known0
		if g.Type == netlist.GateNand {
			return ^v, kn
		}
		return v, kn
	case netlist.GateOr, netlist.GateNor:
		v := uint64(0)
		known1 := ^uint64(0)
		known0 := uint64(0) // any fanin known-1 forces output
		for pin := range g.Fanin {
			fv, fk := fn(pin)
			v |= fv
			known1 &= fk
			known0 |= fk & fv
		}
		kn := known1 | known0
		if g.Type == netlist.GateNor {
			return ^v, kn
		}
		return v, kn
	case netlist.GateXor, netlist.GateXnor:
		v := uint64(0)
		kn := ^uint64(0)
		for pin := range g.Fanin {
			fv, fk := fn(pin)
			v ^= fv
			kn &= fk
		}
		if g.Type == netlist.GateXnor {
			return ^v, kn
		}
		return v, kn
	case netlist.GateMux2:
		sv, sk := fn(0)
		av, ak := fn(1)
		bv, bk := fn(2)
		v := (^sv & av) | (sv & bv)
		// Known when: sel known and the selected input known, or both
		// inputs known and equal.
		kn := (sk & ((^sv & ak) | (sv & bk))) | (ak & bk & ^(av ^ bv))
		return v, kn
	default:
		return 0, 0
	}
}
