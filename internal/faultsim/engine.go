package faultsim

import (
	"wcm3d/internal/faults"
	"wcm3d/internal/netlist"
)

// Engine performs single-fault, event-driven faulty-machine propagation
// against a good-circuit block. It keeps scratch state keyed by an epoch
// counter so consecutive faults reuse the same allocations; create one
// engine per goroutine.
type Engine struct {
	s *Simulator

	fval, fknown []uint64
	touchEpoch   []uint32
	epoch        uint32
	touched      []netlist.SignalID

	// bucket queue by combinational level
	buckets  [][]netlist.SignalID
	inQueue  []uint32 // epoch-stamped "already queued" marker
	maxLevel int
}

// NewEngine allocates propagation scratch space for the simulator's
// netlist.
func (s *Simulator) NewEngine() *Engine {
	ng := s.N.NumGates()
	maxLvl := 0
	for _, l := range s.level {
		if int(l) > maxLvl {
			maxLvl = int(l)
		}
	}
	return &Engine{
		s:          s,
		fval:       make([]uint64, ng),
		fknown:     make([]uint64, ng),
		touchEpoch: make([]uint32, ng),
		buckets:    make([][]netlist.SignalID, maxLvl+1),
		inQueue:    make([]uint32, ng),
		maxLevel:   maxLvl,
	}
}

// faultyVal reads a signal's value in the faulty machine: the propagated
// faulty value if this signal was touched this epoch, otherwise the good
// value.
func (e *Engine) faultyVal(b *Block, sig netlist.SignalID) (uint64, uint64) {
	if e.touchEpoch[sig] == e.epoch {
		return e.fval[sig], e.fknown[sig]
	}
	return b.val[sig], b.known[sig]
}

// setFaulty records a signal's faulty value and remembers it was touched.
func (e *Engine) setFaulty(sig netlist.SignalID, v, k uint64) {
	if e.touchEpoch[sig] != e.epoch {
		e.touchEpoch[sig] = e.epoch
		e.touched = append(e.touched, sig)
	}
	e.fval[sig] = v
	e.fknown[sig] = k
}

// enqueue schedules a gate for re-evaluation.
func (e *Engine) enqueue(sig netlist.SignalID) {
	if e.inQueue[sig] == e.epoch {
		return
	}
	e.inQueue[sig] = e.epoch
	lvl := e.s.level[sig]
	e.buckets[lvl] = append(e.buckets[lvl], sig)
}

// Detects simulates one stuck-at fault against the block and returns the
// word of patterns that detect it (bit k set = pattern k detects). A
// pattern detects the fault when good and faulty values are both known and
// differ at at least one observation point.
func (e *Engine) Detects(f faults.Fault, good *Block) uint64 {
	s := e.s
	n := s.N
	e.epoch++
	e.touched = e.touched[:0]

	stuck := uint64(0)
	if f.StuckAt == 1 {
		stuck = good.mask
	}

	site := f.Gate
	var seedV, seedK uint64
	if f.Pin == faults.OutputPin {
		seedV, seedK = stuck, good.mask
	} else {
		g := n.Gate(site)
		if g.Type == netlist.GateDFF {
			// A branch fault on the D pin corrupts only what the
			// flip-flop captures; the scan chain observes the capture
			// directly. Detected wherever the good D value is known
			// and differs from the stuck value.
			d := g.Fanin[f.Pin]
			return good.known[d] & (good.val[d] ^ stuck) & good.mask
		}
		fp := int(f.Pin)
		seedV, seedK = evalWordWith(g, func(pin int, src netlist.SignalID) (uint64, uint64) {
			if pin == fp {
				return stuck, good.mask
			}
			return good.val[src], good.known[src]
		})
		seedV &= good.mask
		seedK &= good.mask
	}

	// No observable difference at the site → no propagation. A
	// difference exists for a pattern when either value is known and
	// they disagree, or knownness changed.
	diff := (seedK | good.known[site]) & ((seedV & seedK) ^ (good.val[site] & good.known[site]))
	diff |= seedK ^ good.known[site]
	if diff&good.mask == 0 {
		return 0
	}
	e.setFaulty(site, seedV, seedK)
	for _, fo := range n.Fanouts()[site] {
		if n.TypeOf(fo) == netlist.GateDFF {
			continue // effect is captured; D-pin driver is the observed signal
		}
		e.enqueue(fo)
	}

	for lvl := 0; lvl <= e.maxLevel; lvl++ {
		bucket := e.buckets[lvl]
		for bi := 0; bi < len(bucket); bi++ {
			id := bucket[bi]
			g := n.Gate(id)
			v, k := evalWordWith(g, func(_ int, src netlist.SignalID) (uint64, uint64) {
				return e.faultyVal(good, src)
			})
			v &= good.mask
			k &= good.mask
			curV, curK := e.faultyVal(good, id)
			if v == curV && k == curK {
				continue
			}
			e.setFaulty(id, v, k)
			for _, fo := range n.Fanouts()[id] {
				if n.TypeOf(fo) == netlist.GateDFF {
					continue
				}
				e.enqueue(fo)
			}
		}
		e.buckets[lvl] = bucket[:0]
	}

	var det uint64
	for _, sig := range e.touched {
		if !s.observed[sig] {
			continue
		}
		det |= good.known[sig] & e.fknown[sig] & (good.val[sig] ^ e.fval[sig])
	}
	return det & good.mask
}

// DetectsAny reports whether any pattern in the block detects the fault.
func (e *Engine) DetectsAny(f faults.Fault, good *Block) bool {
	return e.Detects(f, good) != 0
}

// Campaign fault-simulates a pattern set against a fault list with fault
// dropping and returns per-fault detection plus, for each pattern, whether
// it was the first detector of at least one fault (useful for pattern-set
// compaction). Patterns are processed in blocks of 64 in the given order.
type Campaign struct {
	// Detected[i] is true when fault list[i] was detected.
	Detected []bool
	// FirstDetector[i] is the pattern index that first detected fault i,
	// or -1.
	FirstDetector []int
	// UsefulPattern[p] is true when pattern p first-detected >= 1 fault.
	UsefulPattern []bool
	// NumDetected counts detected faults.
	NumDetected int
}

// RunCampaign simulates every pattern against every (not yet detected)
// fault.
func (s *Simulator) RunCampaign(patterns []Pattern, list []faults.Fault) (*Campaign, error) {
	c := &Campaign{
		Detected:      make([]bool, len(list)),
		FirstDetector: make([]int, len(list)),
		UsefulPattern: make([]bool, len(patterns)),
	}
	for i := range c.FirstDetector {
		c.FirstDetector[i] = -1
	}
	eng := s.NewEngine()
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		block, err := s.GoodSim(patterns[base:end])
		if err != nil {
			return nil, err
		}
		for fi := range list {
			if c.Detected[fi] {
				continue
			}
			det := eng.Detects(list[fi], block)
			if det == 0 {
				continue
			}
			first := 0
			for ; first < 64; first++ {
				if det&(1<<uint(first)) != 0 {
					break
				}
			}
			c.Detected[fi] = true
			c.FirstDetector[fi] = base + first
			c.UsefulPattern[base+first] = true
			c.NumDetected++
		}
	}
	return c, nil
}

// Coverage returns detected/total as a fraction in [0,1].
func (c *Campaign) Coverage() float64 {
	if len(c.Detected) == 0 {
		return 1
	}
	return float64(c.NumDetected) / float64(len(c.Detected))
}
