// Package diagnose locates defects from tester responses — the step after
// pre-bond testing flags a die as bad. Given the pattern set that was
// applied and the set of patterns that failed on the tester, it ranks
// candidate faults by how well each one's simulated failure signature
// matches the observation (a classic pattern-granularity fault
// dictionary).
//
// In the 3D-IC setting this answers the question the paper's flow sets up:
// once a wrapped die fails pre-bond test, WHICH TSV (or which logic cone)
// is defective — the difference between discarding a die and repairing a
// process step.
package diagnose

import (
	"fmt"
	"math/bits"
	"sort"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

// Syndrome is the tester observation: for each applied pattern, whether the
// die's response mismatched the good-machine response.
type Syndrome struct {
	// Failing[i] is true when pattern i failed.
	Failing []bool
}

// FailCount returns the number of failing patterns.
func (s *Syndrome) FailCount() int {
	c := 0
	for _, f := range s.Failing {
		if f {
			c++
		}
	}
	return c
}

// Candidate is one scored explanation of the syndrome.
type Candidate struct {
	// Fault is the candidate defect.
	Fault faults.Fault
	// Matched counts failing patterns the fault predicts.
	Matched int
	// Missed counts failing patterns the fault does not predict.
	Missed int
	// Extra counts passing patterns the fault would have failed.
	Extra int
}

// Exact reports a perfect signature match.
func (c Candidate) Exact() bool { return c.Missed == 0 && c.Extra == 0 }

// Score orders candidates: exact matches first, then by fewest
// discrepancies, then by most matched.
func (c Candidate) score() (int, int) {
	return c.Missed + c.Extra, -c.Matched
}

// Locate simulates every candidate fault against the applied patterns and
// ranks them against the syndrome. Returns candidates sorted best-first;
// faults predicting no failing pattern at all are dropped.
func Locate(n *netlist.Netlist, patterns []faultsim.Pattern, syn *Syndrome, candidates []faults.Fault) ([]Candidate, error) {
	if len(syn.Failing) != len(patterns) {
		return nil, fmt.Errorf("diagnose: syndrome covers %d patterns, %d applied",
			len(syn.Failing), len(patterns))
	}
	sim := faultsim.New(n)
	eng := sim.NewEngine()

	// Observed failing set as bit words per 64-pattern block.
	blocks := (len(patterns) + 63) / 64
	observed := make([]uint64, blocks)
	for i, f := range syn.Failing {
		if f {
			observed[i>>6] |= 1 << (uint(i) & 63)
		}
	}

	var out []Candidate
	for _, f := range candidates {
		var matched, missed, extra int
		any := false
		for b := 0; b < blocks; b++ {
			lo := b * 64
			hi := lo + 64
			if hi > len(patterns) {
				hi = len(patterns)
			}
			good, err := sim.GoodSim(patterns[lo:hi])
			if err != nil {
				return nil, err
			}
			det := eng.Detects(f, good)
			if det != 0 {
				any = true
			}
			obs := observed[b]
			matched += bits.OnesCount64(det & obs)
			missed += bits.OnesCount64(obs &^ det)
			extra += bits.OnesCount64(det &^ obs)
		}
		if !any {
			continue
		}
		out = append(out, Candidate{Fault: f, Matched: matched, Missed: missed, Extra: extra})
	}
	sort.SliceStable(out, func(i, j int) bool {
		di, mi := out[i].score()
		dj, mj := out[j].score()
		if di != dj {
			return di < dj
		}
		return mi < mj
	})
	return out, nil
}

// TSVSuspects maps a ranked candidate list onto the die's TSVs: a fault
// inside an inbound TSV's fan-out cone (or whose effect feeds an outbound
// TSV port's fan-in cone) implicates that TSV's wrapper path. Returns TSV
// names in implication order, deduplicated.
func TSVSuspects(n *netlist.Netlist, ranked []Candidate, maxFaults int) []string {
	if maxFaults <= 0 || maxFaults > len(ranked) {
		maxFaults = len(ranked)
	}
	var cones []*netlist.BitSet
	var names []string
	for _, t := range n.InboundTSVs() {
		cones = append(cones, n.FanoutCone(t))
		names = append(names, n.NameOf(t))
	}
	for _, oi := range n.OutboundTSVs() {
		cones = append(cones, n.FaninCone(n.Outputs[oi].Signal))
		names = append(names, n.Outputs[oi].Name)
	}
	seen := map[string]bool{}
	var out []string
	for _, c := range ranked[:maxFaults] {
		for i, cone := range cones {
			if cone.Has(c.Fault.Gate) && !seen[names[i]] {
				seen[names[i]] = true
				out = append(out, names[i])
			}
		}
	}
	return out
}
