package diagnose

import (
	"testing"

	"wcm3d/internal/faults"
	"wcm3d/internal/netgen"
)

// TestLocateRejectsLengthMismatch locks the syndrome/pattern contract: a
// tester log that does not cover the applied pattern set is an input
// error, not a silent truncation.
func TestLocateRejectsLengthMismatch(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	if len(patterns) < 2 {
		t.Skip("need at least two patterns")
	}
	syn := &Syndrome{Failing: make([]bool, len(patterns)-1)}
	if _, err := Locate(tn, patterns, syn, universe); err == nil {
		t.Fatal("short syndrome accepted")
	}
	syn = &Syndrome{Failing: make([]bool, len(patterns)+3)}
	if _, err := Locate(tn, patterns, syn, universe); err == nil {
		t.Fatal("long syndrome accepted")
	}
}

// TestLocateEmptyInputs covers the degenerate tester logs: no patterns
// applied, or no candidate faults to rank. Both diagnose to nothing
// without error.
func TestLocateEmptyInputs(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	ranked, err := Locate(tn, nil, &Syndrome{}, universe)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 0 {
		t.Fatalf("no patterns ranked %d candidates", len(ranked))
	}
	ranked, err = Locate(tn, patterns, &Syndrome{Failing: make([]bool, len(patterns))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 0 {
		t.Fatalf("no candidates ranked %d", len(ranked))
	}
}

// TestLocateAllPassingSyndrome is the all-good die: every candidate that
// predicts any failure at all disagrees with the tester on every one of
// them, so nothing may rank as an exact match.
func TestLocateAllPassingSyndrome(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	syn := &Syndrome{Failing: make([]bool, len(patterns))}
	ranked, err := Locate(tn, patterns, syn, universe)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ranked {
		if c.Exact() {
			t.Fatalf("fault %s matches an all-passing syndrome exactly", c.Fault.Describe(tn))
		}
		if c.Matched != 0 {
			t.Fatalf("fault %s matched %d failing patterns of zero", c.Fault.Describe(tn), c.Matched)
		}
	}
}

// TestLocateAllFailingSyndrome is the opposite extreme — a die so broken
// every pattern failed. Candidates must still rank without error and no
// candidate can report Extra (there is no passing pattern to disagree on).
func TestLocateAllFailingSyndrome(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	syn := &Syndrome{Failing: make([]bool, len(patterns))}
	for i := range syn.Failing {
		syn.Failing[i] = true
	}
	ranked, err := Locate(tn, patterns, syn, universe)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("an all-failing syndrome must leave some candidate standing")
	}
	for _, c := range ranked {
		if c.Extra != 0 {
			t.Fatalf("fault %s reports %d extra failures with none possible", c.Fault.Describe(tn), c.Extra)
		}
	}
}

// TestTSVSuspectsBounds covers the candidate-budget edge cases: a
// non-positive or oversized maxFaults means "use every candidate", and an
// empty ranking implicates nothing.
func TestTSVSuspectsBounds(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	truth := universe[0]
	syn := defectiveSyndrome(t, tn, truth, patterns)
	if syn.FailCount() == 0 {
		t.Skip("undetectable truth")
	}
	ranked, err := Locate(tn, patterns, syn, universe)
	if err != nil {
		t.Fatal(err)
	}
	all := TSVSuspects(tn, ranked, 0)
	if got := TSVSuspects(tn, ranked, -5); len(got) != len(all) {
		t.Errorf("maxFaults=-5 gave %d suspects, maxFaults=0 gave %d", len(got), len(all))
	}
	if got := TSVSuspects(tn, ranked, len(ranked)+100); len(got) != len(all) {
		t.Errorf("oversized maxFaults gave %d suspects, want %d", len(got), len(all))
	}
	if got := TSVSuspects(tn, nil, 0); len(got) != 0 {
		t.Errorf("empty ranking implicated %d TSVs", len(got))
	}
}

// TestTSVSuspectsNoTSVs runs suspect mapping on a die with no TSVs at
// all: nothing can be implicated, whatever the ranking says.
func TestTSVSuspectsNoTSVs(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 80, FFs: 4, PIs: 4, POs: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	universe := faults.CollapsedList(n)
	ranked := []Candidate{{Fault: universe[0], Matched: 1}}
	if got := TSVSuspects(n, ranked, 0); len(got) != 0 {
		t.Fatalf("TSV-free die implicated %v", got)
	}
}
