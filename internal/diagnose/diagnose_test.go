package diagnose

import (
	"testing"

	"wcm3d/internal/atpg"
	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/scan"
)

// defectiveSyndrome simulates a die with one injected fault and returns
// the syndrome a tester would record for the pattern set.
func defectiveSyndrome(t *testing.T, n *netlist.Netlist, truth faults.Fault, patterns []faultsim.Pattern) *Syndrome {
	t.Helper()
	sim := faultsim.New(n)
	eng := sim.NewEngine()
	syn := &Syndrome{Failing: make([]bool, len(patterns))}
	for base := 0; base < len(patterns); base += 64 {
		end := base + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		good, err := sim.GoodSim(patterns[base:end])
		if err != nil {
			t.Fatal(err)
		}
		det := eng.Detects(truth, good)
		for k := 0; k < end-base; k++ {
			if det&(1<<uint(k)) != 0 {
				syn.Failing[base+k] = true
			}
		}
	}
	return syn
}

func wrappedDie(t *testing.T) (*netlist.Netlist, []faultsim.Pattern, []faults.Fault) {
	t.Helper()
	raw, err := netgen.Random(netgen.RandomOptions{
		Gates: 250, FFs: 12, PIs: 5, POs: 3, InboundTSVs: 8, OutboundTSVs: 6, Seed: 91,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fully wrapped: the realistic post-DFT test view.
	tn, err := scan.ApplyTestMode(raw, scan.FullWrap(raw))
	if err != nil {
		t.Fatal(err)
	}
	universe := faults.CollapsedList(raw)
	res, err := atpg.Run(tn, universe, atpg.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tn, res.Patterns, universe
}

func TestLocateRanksTrueFaultFirst(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	// Pick a few detectable truths and check each diagnoses to itself
	// (or an equivalent fault with an identical signature).
	sim := faultsim.New(tn)
	eng := sim.NewEngine()
	diagnosed := 0
	for i := 0; i < len(universe) && diagnosed < 8; i += len(universe)/8 + 1 {
		truth := universe[i]
		syn := defectiveSyndrome(t, tn, truth, patterns)
		if syn.FailCount() == 0 {
			continue // undetectable truth: nothing to diagnose
		}
		ranked, err := Locate(tn, patterns, syn, universe)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranked) == 0 {
			t.Fatalf("no candidates for %s", truth.Describe(tn))
		}
		best := ranked[0]
		if !best.Exact() {
			t.Errorf("truth %s: best candidate %s not exact (missed %d, extra %d)",
				truth.Describe(tn), best.Fault.Describe(tn), best.Missed, best.Extra)
		}
		// The true fault itself must appear among the exact matches.
		foundTruth := false
		for _, c := range ranked {
			if !c.Exact() {
				break
			}
			if c.Fault == truth {
				foundTruth = true
				break
			}
		}
		if !foundTruth {
			t.Errorf("truth %s missing from exact matches", truth.Describe(tn))
		}
		diagnosed++
		_ = eng
	}
	if diagnosed < 4 {
		t.Fatalf("only %d faults diagnosed", diagnosed)
	}
}

func TestLocateRejectsMismatchedSyndrome(t *testing.T) {
	tn, patterns, universe := wrappedDie(t)
	if _, err := Locate(tn, patterns, &Syndrome{Failing: make([]bool, 3)}, universe); err == nil {
		t.Error("syndrome length mismatch must error")
	}
}

func TestTSVSuspects(t *testing.T) {
	raw, err := netgen.Random(netgen.RandomOptions{
		Gates: 150, FFs: 8, PIs: 4, POs: 2, InboundTSVs: 5, OutboundTSVs: 4, Seed: 93,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fault right at an inbound pad must implicate that pad.
	pad := raw.InboundTSVs()[2]
	ranked := []Candidate{{Fault: faults.Fault{Gate: pad, Pin: faults.OutputPin, StuckAt: 1}}}
	suspects := TSVSuspects(raw, ranked, 1)
	want := raw.NameOf(pad)
	found := false
	for _, s := range suspects {
		if s == want {
			found = true
		}
	}
	if !found {
		t.Errorf("suspects %v do not include %s", suspects, want)
	}
}
