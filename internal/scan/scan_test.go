package scan

import (
	"math/rand"
	"strings"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
)

func die(t *testing.T) *netlist.Netlist {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 200, FFs: 10, PIs: 5, POs: 3, InboundTSVs: 6, OutboundTSVs: 5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestFullWrapCoversEverything(t *testing.T) {
	n := die(t)
	a := FullWrap(n)
	if err := a.Validate(n); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !a.Covered(n) {
		t.Error("FullWrap must cover every TSV")
	}
	if a.ReusedFFs() != 0 {
		t.Error("FullWrap reuses no flip-flops")
	}
	if a.AdditionalCells() != 11 {
		t.Errorf("AdditionalCells = %d, want 11 (6 inbound + 5 outbound)", a.AdditionalCells())
	}
}

func TestAssignmentCounters(t *testing.T) {
	n := die(t)
	ffs := n.FlipFlops()
	in := n.InboundTSVs()
	out := n.OutboundTSVs()
	a := &Assignment{
		Control: []ControlGroup{
			{ReusedFF: ffs[0], TSVs: in[:2]},
			{ReusedFF: netlist.InvalidSignal, TSVs: in[2:]},
		},
		Observe: []ObserveGroup{
			{ReusedFF: ffs[1], Ports: out[:1]},
			{ReusedFF: netlist.InvalidSignal, Ports: out[1:]},
		},
	}
	if err := a.Validate(n); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.ReusedFFs() != 2 || a.AdditionalCells() != 2 {
		t.Errorf("counters = (%d reused, %d additional), want (2, 2)", a.ReusedFFs(), a.AdditionalCells())
	}
	if !a.Covered(n) {
		t.Error("plan covers all TSVs")
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	n := die(t)
	ffs := n.FlipFlops()
	in := n.InboundTSVs()
	out := n.OutboundTSVs()
	cases := []struct {
		name string
		a    *Assignment
		want string
	}{
		{"empty-group", &Assignment{Control: []ControlGroup{{ReusedFF: ffs[0]}}}, "empty"},
		{"non-ff", &Assignment{Control: []ControlGroup{{ReusedFF: in[0], TSVs: in[:1]}}}, "non-FF"},
		{"non-tsv", &Assignment{Control: []ControlGroup{{ReusedFF: ffs[0], TSVs: []netlist.SignalID{ffs[1]}}}}, "non-TSV"},
		{"dup-tsv", &Assignment{Control: []ControlGroup{
			{ReusedFF: ffs[0], TSVs: in[:1]},
			{ReusedFF: netlist.InvalidSignal, TSVs: in[:1]},
		}}, "two groups"},
		{"dup-ff", &Assignment{
			Control: []ControlGroup{{ReusedFF: ffs[0], TSVs: in[:1]}},
			Observe: []ObserveGroup{{ReusedFF: ffs[0], Ports: out[:1]}},
		}, "used by"},
		{"bad-port", &Assignment{Observe: []ObserveGroup{{ReusedFF: ffs[0], Ports: []int{9999}}}}, "invalid"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.a.Validate(n)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestApplyTestModeMakesTSVsTestable(t *testing.T) {
	n := die(t)
	base := faultsim.New(n)
	// Unwrapped: the TSV pads are X sources and the TSV_OUT cones are
	// unobservable.
	for _, tsv := range n.InboundTSVs() {
		if _, ok := base.SourceIndex(tsv); ok {
			t.Fatal("unwrapped pad must not be controllable")
		}
	}

	tn, err := ApplyTestMode(n, FullWrap(n))
	if err != nil {
		t.Fatal(err)
	}
	sim := faultsim.New(tn)
	// All pads now repeat controllable sources.
	for _, tsv := range n.InboundTSVs() {
		g := tn.Gate(tsv)
		if g.Type != netlist.GateBuf {
			t.Errorf("pad %s not rewired (type %s)", tn.NameOf(tsv), g.Type)
		}
		if _, ok := sim.SourceIndex(g.Fanin[0]); !ok {
			t.Errorf("pad %s driven by non-source", tn.NameOf(tsv))
		}
	}
	// Every outbound TSV signal is now in some capture cone: its driver
	// must be observed (directly or via an XOR path to a D pin). Check
	// coverage improves.
	list := faults.CollapsedList(n) // functional universe, same gate indices
	simN := faultsim.New(n)
	campBefore, err := simN.RunCampaign(randPats(simN, 128), list)
	if err != nil {
		t.Fatal(err)
	}
	campAfter, err := sim.RunCampaign(randPats(sim, 128), list)
	if err != nil {
		t.Fatal(err)
	}
	if campAfter.Coverage() <= campBefore.Coverage() {
		t.Errorf("wrapping must raise coverage: %.4f -> %.4f",
			campBefore.Coverage(), campAfter.Coverage())
	}
}

func randPats(s *faultsim.Simulator, n int) []faultsim.Pattern {
	var pats []faultsim.Pattern
	rng := testRand()
	for i := 0; i < n; i++ {
		pats = append(pats, s.RandomPattern(rng))
	}
	return pats
}

func TestApplyTestModeSharedControl(t *testing.T) {
	n := die(t)
	ffs := n.FlipFlops()
	in := n.InboundTSVs()
	a := &Assignment{
		Control: []ControlGroup{{ReusedFF: ffs[0], TSVs: in}},
		Observe: []ObserveGroup{{ReusedFF: netlist.InvalidSignal, Ports: n.OutboundTSVs()}},
	}
	tn, err := ApplyTestMode(n, a)
	if err != nil {
		t.Fatal(err)
	}
	// All pads driven by the same FF.
	for _, tsv := range in {
		if tn.Gate(tsv).Fanin[0] != ffs[0] {
			t.Errorf("pad %s not driven by the shared FF", tn.NameOf(tsv))
		}
	}
	// Shared observation: one new DFF capturing an XOR tree.
	newFFs := tn.FlipFlops()
	if len(newFFs) != len(ffs)+1 {
		t.Errorf("flip-flops %d, want %d (one observation cell)", len(newFFs), len(ffs)+1)
	}
}

func TestApplyTestModeReusedObserver(t *testing.T) {
	n := die(t)
	ffs := n.FlipFlops()
	out := n.OutboundTSVs()
	a := &Assignment{
		Control: []ControlGroup{{ReusedFF: netlist.InvalidSignal, TSVs: n.InboundTSVs()}},
		Observe: []ObserveGroup{{ReusedFF: ffs[2], Ports: out[:2]}, {ReusedFF: netlist.InvalidSignal, Ports: out[2:]}},
	}
	origD := n.Gate(ffs[2]).Fanin[0]
	tn, err := ApplyTestMode(n, a)
	if err != nil {
		t.Fatal(err)
	}
	// The reused FF's D must now be an XOR folding the original D.
	d := tn.Gate(ffs[2]).Fanin[0]
	if tn.TypeOf(d) != netlist.GateXor {
		t.Fatalf("reused observer D is %s, want XOR", tn.TypeOf(d))
	}
	if tn.Gate(d).Fanin[0] != origD {
		t.Error("XOR must fold the original D function")
	}
	// Original netlist untouched.
	if n.Gate(ffs[2]).Fanin[0] != origD {
		t.Error("ApplyTestMode mutated the input netlist")
	}
}

func TestApplyFunctionalModeTiming(t *testing.T) {
	n := die(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := FullWrap(n)
	fn, fpl, err := ApplyFunctionalMode(n, pl, lib, a)
	if err != nil {
		t.Fatal(err)
	}
	if fpl.Netlist != fn {
		t.Fatal("returned placement must belong to the functional netlist")
	}
	if len(fpl.Coords) != fn.NumGates() {
		t.Fatalf("coords %d for %d gates", len(fpl.Coords), fn.NumGates())
	}
	// The functional view carries extra gates (muxes, cells).
	if fn.NumGates() <= n.NumGates() {
		t.Error("functional view must contain the test hardware")
	}
	// Timing analysis runs and the critical path grows vs the bare die.
	rBare, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e6, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	rFunc, err := sta.Analyze(fn, lib, sta.Config{ClockPS: 1e6, Placement: fpl})
	if err != nil {
		t.Fatal(err)
	}
	if rFunc.CriticalPathPS() <= rBare.CriticalPathPS() {
		t.Errorf("test hardware must lengthen the critical path: %v <= %v",
			rFunc.CriticalPathPS(), rBare.CriticalPathPS())
	}
}

func TestFunctionalModeDistantFFHurtsTiming(t *testing.T) {
	// Reusing a flip-flop far from the TSV must add more delay than a
	// dedicated cell at the pad — the physical fact behind the paper's
	// wire-aware timing model.
	n := die(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	in := n.InboundTSVs()
	// Find the FF farthest from pad in[0].
	var farFF netlist.SignalID = netlist.InvalidSignal
	worst := -1.0
	for _, ff := range n.FlipFlops() {
		if d := pl.Distance(ff, in[0]); d > worst {
			worst, farFF = d, ff
		}
	}
	rest := ControlGroup{ReusedFF: netlist.InvalidSignal, TSVs: in[1:]}
	obs := ObserveGroup{ReusedFF: netlist.InvalidSignal, Ports: n.OutboundTSVs()}

	aFar := &Assignment{Control: []ControlGroup{{ReusedFF: farFF, TSVs: in[:1]}, rest}, Observe: []ObserveGroup{obs}}
	aDed := &Assignment{Control: []ControlGroup{{ReusedFF: netlist.InvalidSignal, TSVs: in[:1]}, rest}, Observe: []ObserveGroup{obs}}

	ffDelay := func(a *Assignment) float64 {
		fn, fpl, err := ApplyFunctionalMode(n, pl, lib, a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sta.Analyze(fn, lib, sta.Config{ClockPS: 1e6, Placement: fpl})
		if err != nil {
			t.Fatal(err)
		}
		return r.DelayPS[farFF]
	}
	if dFar, dDed := ffDelay(aFar), ffDelay(aDed); dFar <= dDed {
		t.Errorf("driving a mux %v µm away must slow the flip-flop: reuse %v ps <= dedicated %v ps",
			worst, dFar, dDed)
	}
}

func testRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestApplyTestModePreservesFaultUniverseIndices(t *testing.T) {
	// The clone-based edit must keep original SignalIDs stable: every
	// original gate keeps its name and type at the same index, so fault
	// lists built on the functional netlist stay valid on the test view.
	n := die(t)
	tn, err := ApplyTestMode(n, FullWrap(n))
	if err != nil {
		t.Fatal(err)
	}
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.NameOf(id) != tn.NameOf(id) {
			t.Fatalf("signal %d renamed: %q -> %q", i, n.NameOf(id), tn.NameOf(id))
		}
		// Types may change only at TSV pads (rewired to BUF).
		if n.TypeOf(id) != tn.TypeOf(id) && n.TypeOf(id) != netlist.GateTSVIn {
			t.Fatalf("signal %q changed type %s -> %s", n.NameOf(id), n.TypeOf(id), tn.TypeOf(id))
		}
	}
}

func TestFunctionalModeKeepsFunctionUnderTieLow(t *testing.T) {
	// With test_en=0 the functional view must compute the same outputs
	// as the raw die for any input vector.
	n := die(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fn, _, err := ApplyFunctionalMode(n, pl, lib, FullWrap(n))
	if err != nil {
		t.Fatal(err)
	}
	te, ok := fn.SignalByName(TestEnableName)
	if !ok {
		t.Fatal("no test_en")
	}
	for trial := 0; trial < 4; trial++ {
		assign := map[netlist.SignalID]bool{}
		for i := range n.Gates {
			id := netlist.SignalID(i)
			switch n.TypeOf(id) {
			case netlist.GateInput, netlist.GateTSVIn, netlist.GateDFF:
				assign[id] = (i+trial)%2 == 0
			}
		}
		want, err := n.Evaluate(assign)
		if err != nil {
			t.Fatal(err)
		}
		fAssign := map[netlist.SignalID]bool{te: false}
		for i := range fn.Gates {
			id := netlist.SignalID(i)
			switch fn.TypeOf(id) {
			case netlist.GateInput, netlist.GateTSVIn, netlist.GateDFF:
				if int(id) < n.NumGates() {
					fAssign[id] = assign[id]
				} else if _, seen := fAssign[id]; !seen {
					fAssign[id] = false // added test cells: don't care
				}
			}
		}
		got, err := fn.Evaluate(fAssign)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range n.Outputs {
			if o.Class != netlist.PortPO {
				continue
			}
			// Find the same-named port in the functional view.
			for _, fo := range fn.Outputs {
				if fo.Name == o.Name {
					if got[fo.Signal] != want[o.Signal] {
						t.Fatalf("trial %d output %q: functional %v != raw %v",
							trial, o.Name, got[fo.Signal], want[o.Signal])
					}
				}
			}
		}
	}
}
