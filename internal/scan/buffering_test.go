package scan

import (
	"strings"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
)

// TestBufferedRoutingBoundsDriverLoad verifies the buffered-vs-unbuffered
// asymmetry Table III turns on: with BufferedRouting a control point's
// functional load stays bounded no matter how far its pads sit; without
// it the load grows with distance.
func TestBufferedRoutingBoundsDriverLoad(t *testing.T) {
	n := die(t)
	lib := cells.Default45nm()
	// A coarse TSV pitch spreads the die across several buffer segments,
	// so the star actually needs repeaters.
	pl, err := place.Place(n, place.Options{Seed: 8, TSVPitchUM: 120})
	if err != nil {
		t.Fatal(err)
	}
	ffs := n.FlipFlops()
	in := n.InboundTSVs()
	// Reuse one FF for every inbound TSV: a spread star.
	mk := func(buffered bool) *Assignment {
		return &Assignment{
			BufferedRouting: buffered,
			Control:         []ControlGroup{{ReusedFF: ffs[0], TSVs: in}},
			Observe:         []ObserveGroup{{ReusedFF: netlist.InvalidSignal, Ports: n.OutboundTSVs()}},
		}
	}
	loadOf := func(a *Assignment) float64 {
		fn, fpl, err := ApplyFunctionalMode(n, pl, lib, a)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sta.Analyze(fn, lib, sta.Config{ClockPS: 1e6, Placement: fpl})
		if err != nil {
			t.Fatal(err)
		}
		return r.LoadFF[ffs[0]]
	}
	unbuf := loadOf(mk(false))
	buf := loadOf(mk(true))
	if buf >= unbuf {
		t.Errorf("buffered star load %.1f fF must be below unbuffered %.1f fF", buf, unbuf)
	}
	// The buffered-vs-unbuffered gap must cover the repeatered portion
	// of the star wiring (everything beyond one segment per run).
	var expected float64
	for _, tsv := range in {
		if d := pl.Distance(ffs[0], tsv); d > lib.TestBufferDistUM {
			expected += lib.WireCapFF(d - lib.TestBufferDistUM)
		}
	}
	if expected == 0 {
		t.Fatal("test die too small: no run exceeds a buffer segment")
	}
	if unbuf-buf < expected*0.5 {
		t.Errorf("load reduction %.1f fF too small for %.1f fF of repeatered wire",
			unbuf-buf, expected)
	}
}

// TestBufferedRoutingInsertsRepeaters checks that tbuf cells appear only
// under BufferedRouting.
func TestBufferedRoutingInsertsRepeaters(t *testing.T) {
	n := die(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	count := func(buffered bool) int {
		a := FullWrap(n)
		a.BufferedRouting = buffered
		fn, _, err := ApplyFunctionalMode(n, pl, lib, a)
		if err != nil {
			t.Fatal(err)
		}
		c := 0
		for i := range fn.Gates {
			if strings.HasPrefix(fn.Gates[i].Name, "tbuf") {
				c++
			}
		}
		return c
	}
	if got := count(false); got != 0 {
		t.Errorf("unbuffered plan inserted %d repeaters", got)
	}
	// The die spans more than one buffer segment, so the buffered
	// full-wrap plan should need at least one repeater (observation
	// cells tap signals across the die).
	if pl.Width+pl.Height > lib.TestBufferDistUM {
		if got := count(true); got == 0 {
			t.Log("note: no repeaters needed on this placement (all runs short)")
		}
	}
}

// TestDedicatedObserveCellGatedCapture verifies the capture mux on
// dedicated observation cells: under test_en case analysis the fold chain
// must not constrain functional timing.
func TestDedicatedObserveCellGatedCapture(t *testing.T) {
	n := die(t)
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := FullWrap(n)
	fn, fpl, err := ApplyFunctionalMode(n, pl, lib, a)
	if err != nil {
		t.Fatal(err)
	}
	te, ok := fn.SignalByName(TestEnableName)
	if !ok {
		t.Fatal("no test_en in functional view")
	}
	r, err := sta.Analyze(fn, lib, sta.Config{ClockPS: 1e6, Placement: fpl, TieLow: []netlist.SignalID{te}})
	if err != nil {
		t.Fatal(err)
	}
	// Every wcom mux exists and the folded input (pin 2) is untimed.
	found := 0
	for i := range fn.Gates {
		g := &fn.Gates[i]
		if !strings.HasPrefix(g.Name, "wcom") {
			continue
		}
		found++
		folded := g.Fanin[2]
		if r.RequiredPS[folded] < 1e300 {
			// The folded signal may feed other timed logic too (it IS
			// a functional signal); what must be untimed is the pure
			// fold path. Spot-check only pure fold gates (wobx).
			if strings.HasPrefix(fn.NameOf(folded), "wobx") {
				t.Errorf("fold gate %s is timed under case analysis", fn.NameOf(folded))
			}
		}
	}
	if found == 0 {
		t.Fatal("no dedicated-capture muxes found")
	}
}
