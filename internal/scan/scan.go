// Package scan is the DFT editor: it takes a wrapper plan (which scan
// flip-flops are reused for which TSVs, and where additional wrapper cells
// go — the output of the WCM solver in internal/wcm) and materializes it as
// netlist edits, in two views:
//
//   - the test-mode view (ApplyTestMode): the circuit as the pre-bond
//     tester sees it — reused flip-flops drive inbound TSV pads, outbound
//     TSV signals are folded into capture flip-flops through XOR trees.
//     This is the netlist ATPG and fault simulation grade.
//
//   - the functional-mode view (ApplyFunctionalMode): the circuit with the
//     physical test hardware (test multiplexers, observation XORs) present
//     on the functional paths, plus placement coordinates for the new
//     cells. This is the netlist static timing analysis checks for
//     violations — the paper's Table III experiment.
package scan

import (
	"fmt"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
)

// TestEnableName is the port name ApplyFunctionalMode gives the shared
// test-enable input; signoff ties it low (case analysis).
const TestEnableName = "test_en"

// ControlGroup is one clique on the inbound side: a set of inbound TSV pads
// sharing a single test-mode control point.
type ControlGroup struct {
	// ReusedFF is the scan flip-flop acting as the control point, or
	// netlist.InvalidSignal when a dedicated wrapper cell is inserted.
	ReusedFF netlist.SignalID
	// TSVs are the inbound TSV pads (GateTSVIn signals) driven by the
	// control point during test.
	TSVs []netlist.SignalID
}

// Reused reports whether the group reuses a scan flip-flop.
func (g ControlGroup) Reused() bool { return g.ReusedFF != netlist.InvalidSignal }

// ObserveGroup is one clique on the outbound side: a set of outbound TSV
// ports sharing a single capture point.
type ObserveGroup struct {
	// ReusedFF is the scan flip-flop acting as the capture point, or
	// netlist.InvalidSignal when a dedicated wrapper cell is inserted.
	ReusedFF netlist.SignalID
	// Ports are indices into Netlist.Outputs (class PortTSVOut) observed
	// by the capture point.
	Ports []int
}

// Reused reports whether the group reuses a scan flip-flop.
func (g ObserveGroup) Reused() bool { return g.ReusedFF != netlist.InvalidSignal }

// Assignment is the complete wrapper plan for one die.
type Assignment struct {
	Control []ControlGroup
	Observe []ObserveGroup
	// BufferedRouting requests repeaters on long test-distribution wires
	// when the plan is materialized in functional mode: the load any
	// control point or tapped signal sees is then bounded to one buffer
	// segment. Wire-aware planners set this (they know where the long
	// runs are); the capacitance-only baseline does not — it cannot see
	// the wires it would need to buffer.
	BufferedRouting bool
}

// ReusedFFs counts distinct flip-flops reused by the plan.
func (a *Assignment) ReusedFFs() int {
	seen := map[netlist.SignalID]struct{}{}
	for _, g := range a.Control {
		if g.Reused() {
			seen[g.ReusedFF] = struct{}{}
		}
	}
	for _, g := range a.Observe {
		if g.Reused() {
			seen[g.ReusedFF] = struct{}{}
		}
	}
	return len(seen)
}

// AdditionalCells counts dedicated wrapper cells the plan inserts.
func (a *Assignment) AdditionalCells() int {
	n := 0
	for _, g := range a.Control {
		if !g.Reused() {
			n++
		}
	}
	for _, g := range a.Observe {
		if !g.Reused() {
			n++
		}
	}
	return n
}

// Validate checks the plan against a die: every group non-empty, every
// member a real TSV of the right direction, every TSV covered exactly once,
// and no flip-flop used by two groups.
func (a *Assignment) Validate(n *netlist.Netlist) error {
	ffUsed := map[string]string{}
	tsvSeen := map[netlist.SignalID]struct{}{}
	for i, g := range a.Control {
		if len(g.TSVs) == 0 {
			return fmt.Errorf("scan: control group %d is empty", i)
		}
		if g.Reused() {
			if n.TypeOf(g.ReusedFF) != netlist.GateDFF {
				return fmt.Errorf("scan: control group %d reuses non-FF %q", i, n.NameOf(g.ReusedFF))
			}
			if prev, dup := ffUsed[n.NameOf(g.ReusedFF)]; dup {
				return fmt.Errorf("scan: FF %q used by %s and control group %d", n.NameOf(g.ReusedFF), prev, i)
			}
			ffUsed[n.NameOf(g.ReusedFF)] = fmt.Sprintf("control group %d", i)
		}
		for _, t := range g.TSVs {
			if n.TypeOf(t) != netlist.GateTSVIn {
				return fmt.Errorf("scan: control group %d contains non-TSV %q", i, n.NameOf(t))
			}
			if _, dup := tsvSeen[t]; dup {
				return fmt.Errorf("scan: inbound TSV %q in two groups", n.NameOf(t))
			}
			tsvSeen[t] = struct{}{}
		}
	}
	portSeen := map[int]struct{}{}
	for i, g := range a.Observe {
		if len(g.Ports) == 0 {
			return fmt.Errorf("scan: observe group %d is empty", i)
		}
		if g.Reused() {
			if n.TypeOf(g.ReusedFF) != netlist.GateDFF {
				return fmt.Errorf("scan: observe group %d reuses non-FF %q", i, n.NameOf(g.ReusedFF))
			}
			if prev, dup := ffUsed[n.NameOf(g.ReusedFF)]; dup {
				return fmt.Errorf("scan: FF %q used by %s and observe group %d", n.NameOf(g.ReusedFF), prev, i)
			}
			ffUsed[n.NameOf(g.ReusedFF)] = fmt.Sprintf("observe group %d", i)
		}
		for _, pIdx := range g.Ports {
			if pIdx < 0 || pIdx >= len(n.Outputs) || n.Outputs[pIdx].Class != netlist.PortTSVOut {
				return fmt.Errorf("scan: observe group %d references invalid TSV_OUT port %d", i, pIdx)
			}
			if _, dup := portSeen[pIdx]; dup {
				return fmt.Errorf("scan: outbound TSV port %d in two groups", pIdx)
			}
			portSeen[pIdx] = struct{}{}
		}
	}
	return nil
}

// Covered reports whether the plan wraps every TSV of the die (full
// pre-bond testability).
func (a *Assignment) Covered(n *netlist.Netlist) bool {
	nIn, nOut := 0, 0
	for _, g := range a.Control {
		nIn += len(g.TSVs)
	}
	for _, g := range a.Observe {
		nOut += len(g.Ports)
	}
	return nIn == len(n.InboundTSVs()) && nOut == len(n.OutboundTSVs())
}

// FullWrap returns the trivial plan: one dedicated wrapper cell per TSV —
// the pre-reuse baseline whose area cost motivates the whole paper.
func FullWrap(n *netlist.Netlist) *Assignment {
	// The reference design is built the way a physical flow would build
	// it: long runs from drivers to pad-side observation cells carry
	// repeaters.
	a := &Assignment{BufferedRouting: true}
	for _, t := range n.InboundTSVs() {
		a.Control = append(a.Control, ControlGroup{ReusedFF: netlist.InvalidSignal, TSVs: []netlist.SignalID{t}})
	}
	for _, p := range n.OutboundTSVs() {
		a.Observe = append(a.Observe, ObserveGroup{ReusedFF: netlist.InvalidSignal, Ports: []int{p}})
	}
	return a
}

// ApplyTestMode builds the pre-bond test view of the die under the plan.
// The original netlist is not modified.
func ApplyTestMode(n *netlist.Netlist, a *Assignment) (*netlist.Netlist, error) {
	if err := a.Validate(n); err != nil {
		return nil, err
	}
	tn := n.Clone()
	tn.Name = n.Name + "_test"
	for i, g := range a.Control {
		var src netlist.SignalID
		if g.Reused() {
			src = g.ReusedFF
		} else {
			// A dedicated wrapper cell is scan-controllable: model its
			// test-mode output as a fresh controllable source.
			var err error
			src, err = tn.AddGate(netlist.GateInput, fmt.Sprintf("wcc%d", i))
			if err != nil {
				return nil, err
			}
		}
		for _, t := range g.TSVs {
			// The pad stops floating: in test mode it repeats the
			// control point.
			gate := tn.Gate(t)
			gate.Type = netlist.GateBuf
			gate.Fanin = []netlist.SignalID{src}
		}
	}
	for i, g := range a.Observe {
		// Fold every member signal into the capture point through an
		// XOR tree (one signal: direct).
		var folded netlist.SignalID = netlist.InvalidSignal
		for j, pIdx := range g.Ports {
			sig := tn.Outputs[pIdx].Signal
			if folded == netlist.InvalidSignal {
				folded = sig
				continue
			}
			x, err := tn.AddGate(netlist.GateXor, fmt.Sprintf("wobx%d_%d", i, j), folded, sig)
			if err != nil {
				return nil, err
			}
			folded = x
		}
		if g.Reused() {
			ff := tn.Gate(g.ReusedFF)
			x, err := tn.AddGate(netlist.GateXor, fmt.Sprintf("wobm%d", i), ff.Fanin[0], folded)
			if err != nil {
				return nil, err
			}
			ff.Fanin[0] = x
		} else {
			// Dedicated observation cell: a fresh scan flip-flop
			// capturing the folded value.
			if _, err := tn.AddGate(netlist.GateDFF, fmt.Sprintf("wco%d", i), folded); err != nil {
				return nil, err
			}
		}
	}
	if err := tn.Validate(); err != nil {
		return nil, fmt.Errorf("scan: test-mode netlist invalid: %w", err)
	}
	return tn, nil
}

// ApplyFunctionalMode builds the functional view with the test hardware in
// place, and extends the placement with coordinates for the new cells:
// control muxes sit at their TSV pads, observation XOR/muxes sit at their
// capture flip-flop, and dedicated wrapper cells sit at their TSV.
// The returned placement belongs to the returned netlist.
func ApplyFunctionalMode(n *netlist.Netlist, pl *place.Placement, lib *cells.Library, a *Assignment) (*netlist.Netlist, *place.Placement, error) {
	if err := a.Validate(n); err != nil {
		return nil, nil, err
	}
	if pl.Netlist != n {
		return nil, nil, fmt.Errorf("scan: placement belongs to %q, plan applies to %q", pl.Netlist.Name, n.Name)
	}
	fn := n.Clone()
	fn.Name = n.Name + "_func"
	coords := append([]place.Point(nil), pl.Coords...)
	outCoords := append([]place.Point(nil), pl.OutCoords...)
	addGate := func(typ netlist.GateType, name string, at place.Point, fanin ...netlist.SignalID) (netlist.SignalID, error) {
		id, err := fn.AddGate(typ, name, fanin...)
		if err != nil {
			return netlist.InvalidSignal, err
		}
		coords = append(coords, at)
		return id, nil
	}

	// One shared test-enable pad (tied off in functional mode, but its
	// mux load and delay are physically present).
	testEn, err := addGate(netlist.GateInput, TestEnableName, place.Point{X: 0, Y: 0})
	if err != nil {
		return nil, nil, err
	}

	// bufRoute carries a signal from its cell to a destination point,
	// inserting repeaters every TestBufferDistUM when the plan requested
	// buffered routing. Returns the signal to connect at the far end.
	bufSeq := 0
	bufRoute := func(src netlist.SignalID, to place.Point) (netlist.SignalID, error) {
		if !a.BufferedRouting || lib == nil || lib.TestBufferDistUM <= 0 {
			return src, nil
		}
		from := coords[src]
		dist := from.ManhattanTo(to)
		hops := int(dist / lib.TestBufferDistUM)
		for h := 1; h <= hops; h++ {
			frac := float64(h) / float64(hops+1)
			at := place.Point{
				X: from.X + (to.X-from.X)*frac,
				Y: from.Y + (to.Y-from.Y)*frac,
			}
			b, err := addGate(netlist.GateBuf, fmt.Sprintf("tbuf%d", bufSeq), at, src)
			if err != nil {
				return netlist.InvalidSignal, err
			}
			bufSeq++
			src = b
		}
		return src, nil
	}

	fanouts := n.Fanouts()
	for i, g := range a.Control {
		var src netlist.SignalID
		if g.Reused() {
			src = g.ReusedFF
		} else {
			// Dedicated wrapper cell at the first member pad.
			src, err = addGate(netlist.GateDFF, fmt.Sprintf("wcc%d", i), coords[g.TSVs[0]], g.TSVs[0])
			if err != nil {
				return nil, nil, err
			}
		}
		for _, t := range g.TSVs {
			// MUX at the pad: functional path TSV→logic picks up one mux
			// stage; the control point picks up the mux pin plus the
			// wire out to the pad (repeatered under buffered routing).
			routed, err := bufRoute(src, coords[t])
			if err != nil {
				return nil, nil, err
			}
			m, err := addGate(netlist.GateMux2, fmt.Sprintf("wcm%d_%s", i, fn.NameOf(t)), coords[t], testEn, t, routed)
			if err != nil {
				return nil, nil, err
			}
			for _, fo := range fanouts[t] {
				fg := fn.Gate(fo)
				for pin, f := range fg.Fanin {
					if f == t {
						fg.Fanin[pin] = m
					}
				}
			}
			for oi := range fn.Outputs {
				if fn.Outputs[oi].Signal == t {
					fn.Outputs[oi].Signal = m
				}
			}
		}
	}
	for i, g := range a.Observe {
		if g.Reused() {
			ffAt := coords[g.ReusedFF]
			var folded netlist.SignalID = netlist.InvalidSignal
			for j, pIdx := range g.Ports {
				sig, err := bufRoute(fn.Outputs[pIdx].Signal, ffAt)
				if err != nil {
					return nil, nil, err
				}
				if folded == netlist.InvalidSignal {
					folded = sig
					continue
				}
				x, err := addGate(netlist.GateXor, fmt.Sprintf("wobx%d_%d", i, j), ffAt, folded, sig)
				if err != nil {
					return nil, nil, err
				}
				folded = x
			}
			ff := fn.Gate(g.ReusedFF)
			origD := ff.Fanin[0]
			x, err := addGate(netlist.GateXor, fmt.Sprintf("wobf%d", i), ffAt, origD, folded)
			if err != nil {
				return nil, nil, err
			}
			m, err := addGate(netlist.GateMux2, fmt.Sprintf("wobm%d", i), ffAt, testEn, origD, x)
			if err != nil {
				return nil, nil, err
			}
			ff.Fanin[0] = m
		} else {
			// Dedicated observation cell at the first member pad; taps
			// add load on the observed signals. Like a reused flip-flop,
			// the cell captures through a test-enable mux — functional
			// signoff ties test_en low, so the fold chain is a test-mode
			// path, not a functional one.
			at := outCoords[g.Ports[0]]
			var folded netlist.SignalID = netlist.InvalidSignal
			for j, pIdx := range g.Ports {
				sig, err := bufRoute(fn.Outputs[pIdx].Signal, at)
				if err != nil {
					return nil, nil, err
				}
				if folded == netlist.InvalidSignal {
					folded = sig
					continue
				}
				x, err := addGate(netlist.GateXor, fmt.Sprintf("wobx%d_%d", i, j), at, folded, sig)
				if err != nil {
					return nil, nil, err
				}
				folded = x
			}
			hold, err := addGate(netlist.GateConst0, fmt.Sprintf("wcoz%d", i), at)
			if err != nil {
				return nil, nil, err
			}
			m, err := addGate(netlist.GateMux2, fmt.Sprintf("wcom%d", i), at, testEn, hold, folded)
			if err != nil {
				return nil, nil, err
			}
			if _, err := addGate(netlist.GateDFF, fmt.Sprintf("wco%d", i), at, m); err != nil {
				return nil, nil, err
			}
		}
	}
	if err := fn.Validate(); err != nil {
		return nil, nil, fmt.Errorf("scan: functional-mode netlist invalid: %w", err)
	}
	npl := &place.Placement{
		Netlist:   fn,
		Width:     pl.Width,
		Height:    pl.Height,
		Coords:    coords,
		OutCoords: outCoords,
	}
	return fn, npl, nil
}
