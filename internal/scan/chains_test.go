package scan

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
)

func chainDie(t *testing.T) (*netlist.Netlist, *place.Placement, *Assignment) {
	t.Helper()
	n := die(t) // from scan_test.go: 10 FFs, 6 inbound, 5 outbound
	pl, err := place.Place(n, place.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ffs := n.FlipFlops()
	a := &Assignment{
		Control: []ControlGroup{
			{ReusedFF: ffs[0], TSVs: n.InboundTSVs()[:3]},
			{ReusedFF: netlist.InvalidSignal, TSVs: n.InboundTSVs()[3:]},
		},
		Observe: []ObserveGroup{
			{ReusedFF: ffs[1], Ports: n.OutboundTSVs()[:2]},
			{ReusedFF: netlist.InvalidSignal, Ports: n.OutboundTSVs()[2:]},
		},
	}
	if err := a.Validate(n); err != nil {
		t.Fatal(err)
	}
	return n, pl, a
}

func TestBuildChainsCoversEveryCell(t *testing.T) {
	n, pl, a := chainDie(t)
	plan, err := BuildChains(n, pl, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 10 FFs + 2 dedicated wrapper cells.
	if plan.NumCells() != 12 {
		t.Errorf("cells = %d, want 12", plan.NumCells())
	}
	if len(plan.Chains) != 3 {
		t.Errorf("chains = %d, want 3", len(plan.Chains))
	}
	seenFF := map[netlist.SignalID]bool{}
	seenW := map[int]bool{}
	for _, ch := range plan.Chains {
		for _, c := range ch {
			if c.FF != netlist.InvalidSignal {
				if seenFF[c.FF] {
					t.Fatalf("FF %d stitched twice", c.FF)
				}
				seenFF[c.FF] = true
			} else {
				if seenW[c.Wrapper] {
					t.Fatalf("wrapper %d stitched twice", c.Wrapper)
				}
				seenW[c.Wrapper] = true
			}
		}
	}
	if len(seenFF) != 10 || len(seenW) != 2 {
		t.Errorf("stitched %d FFs and %d wrappers, want 10 and 2", len(seenFF), len(seenW))
	}
}

func TestBuildChainsBalance(t *testing.T) {
	n, pl, a := chainDie(t)
	plan, err := BuildChains(n, pl, a, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 12 cells over 4 chains: max 3 per chain.
	if plan.MaxLength() > 3 {
		t.Errorf("max chain length %d, want <= 3", plan.MaxLength())
	}
}

func TestBuildChainsSingleChain(t *testing.T) {
	n, pl, a := chainDie(t)
	plan, err := BuildChains(n, pl, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Chains) != 1 || plan.MaxLength() != 12 {
		t.Errorf("single chain of 12 expected, got %d chains max %d", len(plan.Chains), plan.MaxLength())
	}
}

func TestBuildChainsNoPlacement(t *testing.T) {
	n, _, a := chainDie(t)
	plan, err := BuildChains(n, nil, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCells() != 12 {
		t.Errorf("cells = %d, want 12", plan.NumCells())
	}
}

func TestBuildChainsMoreChainsThanCells(t *testing.T) {
	n, pl, a := chainDie(t)
	plan, err := BuildChains(n, pl, a, 99)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCells() != 12 {
		t.Errorf("cells = %d", plan.NumCells())
	}
	for _, ch := range plan.Chains {
		if len(ch) == 0 {
			t.Error("empty chain emitted")
		}
	}
}

func TestBuildChainsRejectsBadArgs(t *testing.T) {
	n, pl, a := chainDie(t)
	if _, err := BuildChains(n, pl, a, 0); err == nil {
		t.Error("zero chains must fail")
	}
	other := die(t)
	otherPl, err := place.Place(other, place.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildChains(n, otherPl, a, 2); err == nil {
		t.Error("foreign placement must fail")
	}
}

func TestNearestNeighborShorterThanArbitrary(t *testing.T) {
	n, pl, a := chainDie(t)
	plan, err := BuildChains(n, pl, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Upper bound: visiting cells in raw FF order.
	var raw float64
	var pts []place.Point
	for _, ff := range n.FlipFlops() {
		pts = append(pts, pl.Coords[ff])
	}
	pts = append(pts, pl.Coords[n.InboundTSVs()[3]])
	pts = append(pts, pl.OutCoords[n.OutboundTSVs()[2]])
	for i := 1; i < len(pts); i++ {
		raw += pts[i-1].ManhattanTo(pts[i])
	}
	if plan.WireUM > raw*1.05 {
		t.Errorf("stitched wire %.1f worse than naive order %.1f", plan.WireUM, raw)
	}
}

func TestTestCycles(t *testing.T) {
	plan := &ChainPlan{Chains: [][]ChainCell{make([]ChainCell, 20), make([]ChainCell, 15)}}
	if got := plan.TestCycles(0); got != 0 {
		t.Errorf("0 patterns -> %d cycles", got)
	}
	// 100 patterns, depth 20: 100*(21) + 20.
	if got := plan.TestCycles(100); got != 100*21+20 {
		t.Errorf("cycles = %d", got)
	}
}

// With no assignment the scan cells are the functional flip-flops alone;
// asking for more chains than FFs must clamp to one cell per chain, and
// the degenerate depth-1 plan must still price test time sensibly.
func TestBuildChainsMoreChainsThanFFs(t *testing.T) {
	n, pl, _ := chainDie(t) // 10 FFs
	plan, err := BuildChains(n, pl, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	nFFs := len(n.FlipFlops())
	if plan.NumCells() != nFFs || len(plan.Chains) != nFFs {
		t.Fatalf("got %d cells in %d chains, want %d singleton chains",
			plan.NumCells(), len(plan.Chains), nFFs)
	}
	for _, ch := range plan.Chains {
		if len(ch) != 1 {
			t.Errorf("chain length %d, want 1", len(ch))
		}
		if ch[0].FF == netlist.InvalidSignal || ch[0].Wrapper != -1 {
			t.Errorf("nil assignment produced a wrapper cell: %+v", ch[0])
		}
	}
	if plan.MaxLength() != 1 {
		t.Errorf("depth = %d, want 1", plan.MaxLength())
	}
	// Depth 1: each pattern costs a shift plus a capture, plus one final
	// shift-out.
	if got := plan.TestCycles(5); got != 5*2+1 {
		t.Errorf("TestCycles(5) = %d, want 11", got)
	}
}

// A netlist with no scan cells at all: the plan must come back empty but
// well-formed, not error, and cost nothing on the tester.
func TestBuildChainsNoScanCells(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 40, FFs: 0, PIs: 4, POs: 3, InboundTSVs: 2, OutboundTSVs: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildChains(n, nil, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumCells() != 0 || len(plan.Chains) != 4 {
		t.Errorf("got %d cells in %d chains, want 0 cells in 4 empty chains",
			plan.NumCells(), len(plan.Chains))
	}
	if plan.MaxLength() != 0 || plan.WireUM != 0 {
		t.Errorf("empty plan has depth %d, wire %.1f", plan.MaxLength(), plan.WireUM)
	}
}

// TestCycles on degenerate plans: an empty plan shifts nothing, so each
// pattern is just its capture cycle; zero patterns are free regardless of
// depth.
func TestTestCyclesDegenerate(t *testing.T) {
	empty := &ChainPlan{}
	if got := empty.TestCycles(10); got != 10 {
		t.Errorf("empty plan, 10 patterns = %d cycles, want 10 capture cycles", got)
	}
	if got := empty.TestCycles(0); got != 0 {
		t.Errorf("empty plan, 0 patterns = %d cycles, want 0", got)
	}
	single := &ChainPlan{Chains: [][]ChainCell{make([]ChainCell, 7)}}
	if got := single.TestCycles(0); got != 0 {
		t.Errorf("0 patterns = %d cycles, want 0", got)
	}
	if got := single.TestCycles(1); got != 1*8+7 {
		t.Errorf("1 pattern at depth 7 = %d cycles, want 15", got)
	}
}
