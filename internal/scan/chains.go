package scan

import (
	"fmt"
	"math"

	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
)

// ChainPlan is a scan-chain stitching: every scan cell of the test
// architecture (functional flip-flops, reused or not, plus the dedicated
// wrapper cells a plan inserts) assigned to an ordered chain. Chain length
// determines shift time, so test time scales with the longest chain.
type ChainPlan struct {
	// Chains holds cell identifiers in shift order. Functional
	// flip-flops appear as their SignalID; dedicated wrapper cells are
	// identified by the virtual IDs returned by WrapperCellIDs.
	Chains [][]ChainCell
	// WireUM is the total stitching wire length (placement-routed,
	// nearest-neighbor order).
	WireUM float64
}

// ChainCell is one scan element: a functional flip-flop or a dedicated
// wrapper cell from a plan.
type ChainCell struct {
	// FF is the flip-flop signal, or netlist.InvalidSignal for a
	// dedicated wrapper cell.
	FF netlist.SignalID
	// Wrapper indexes the plan's wrapper cells (control groups first,
	// then observe groups, counting only non-reused groups); -1 for
	// functional flip-flops.
	Wrapper int
}

// MaxLength returns the longest chain's cell count — the shift depth.
func (c *ChainPlan) MaxLength() int {
	max := 0
	for _, ch := range c.Chains {
		if len(ch) > max {
			max = len(ch)
		}
	}
	return max
}

// NumCells returns the total number of scan cells.
func (c *ChainPlan) NumCells() int {
	n := 0
	for _, ch := range c.Chains {
		n += len(ch)
	}
	return n
}

// BuildChains stitches the die's scan cells into nChains chains, balanced
// by count and ordered nearest-neighbor by placement to keep stitching
// wire short (the standard physical scan-stitching heuristic).
func BuildChains(n *netlist.Netlist, pl *place.Placement, a *Assignment, nChains int) (*ChainPlan, error) {
	if nChains < 1 {
		return nil, fmt.Errorf("scan: need at least one chain, got %d", nChains)
	}
	if pl != nil && pl.Netlist != n {
		return nil, fmt.Errorf("scan: placement belongs to %q, stitching %q", pl.Netlist.Name, n.Name)
	}
	type cell struct {
		c  ChainCell
		at place.Point
	}
	var cells []cell
	for _, ff := range n.FlipFlops() {
		at := place.Point{}
		if pl != nil {
			at = pl.Coords[ff]
		}
		cells = append(cells, cell{ChainCell{FF: ff, Wrapper: -1}, at})
	}
	if a != nil {
		w := 0
		for _, g := range a.Control {
			if g.Reused() {
				continue
			}
			at := place.Point{}
			if pl != nil {
				at = pl.Coords[g.TSVs[0]]
			}
			cells = append(cells, cell{ChainCell{FF: netlist.InvalidSignal, Wrapper: w}, at})
			w++
		}
		for _, g := range a.Observe {
			if g.Reused() {
				continue
			}
			at := place.Point{}
			if pl != nil {
				at = pl.OutCoords[g.Ports[0]]
			}
			cells = append(cells, cell{ChainCell{FF: netlist.InvalidSignal, Wrapper: w}, at})
			w++
		}
	}
	if len(cells) == 0 {
		return &ChainPlan{Chains: make([][]ChainCell, nChains)}, nil
	}
	if nChains > len(cells) {
		nChains = len(cells)
	}

	// Assign cells to chains by horizontal bands (keeps each chain
	// spatially coherent), then order each chain nearest-neighbor.
	perChain := (len(cells) + nChains - 1) / nChains
	// Sort by Y then X (simple insertion sort keeps this dependency-free
	// and the cell counts are modest).
	for i := 1; i < len(cells); i++ {
		for j := i; j > 0; j-- {
			a, b := cells[j-1], cells[j]
			if a.at.Y < b.at.Y || (a.at.Y == b.at.Y && a.at.X <= b.at.X) {
				break
			}
			cells[j-1], cells[j] = b, a
		}
	}
	plan := &ChainPlan{}
	for start := 0; start < len(cells); start += perChain {
		end := start + perChain
		if end > len(cells) {
			end = len(cells)
		}
		band := append([]cell(nil), cells[start:end]...)
		// Nearest-neighbor ordering within the band, starting from the
		// west-most cell.
		startIdx := 0
		for i := range band {
			if band[i].at.X < band[startIdx].at.X {
				startIdx = i
			}
		}
		band[0], band[startIdx] = band[startIdx], band[0]
		for i := 1; i < len(band); i++ {
			bestJ, bestD := i, math.Inf(1)
			for j := i; j < len(band); j++ {
				if d := band[i-1].at.ManhattanTo(band[j].at); d < bestD {
					bestD, bestJ = d, j
				}
			}
			band[i], band[bestJ] = band[bestJ], band[i]
			plan.WireUM += band[i-1].at.ManhattanTo(band[i].at)
		}
		chain := make([]ChainCell, len(band))
		for i, c := range band {
			chain[i] = c.c
		}
		plan.Chains = append(plan.Chains, chain)
	}
	return plan, nil
}

// TestCycles estimates tester cycles for a pattern set under this chain
// plan: each pattern shifts in over MaxLength cycles (shift-out of the
// previous response overlaps shift-in), plus one capture cycle, plus a
// final shift-out.
func (c *ChainPlan) TestCycles(patterns int) int {
	if patterns == 0 {
		return 0
	}
	l := c.MaxLength()
	return patterns*(l+1) + l
}
