package partition

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

// TestPartitionRejectsBadDieCounts locks the input contract: die counts
// must be a power of two >= 2, and the netlist must have at least one gate
// per die.
func TestPartitionRejectsBadDieCounts(t *testing.T) {
	n := monolith(t, 120, 11)
	for _, dies := range []int{-2, 1, 3, 5, 6, 12} {
		if _, err := Partition(n, Options{Dies: dies, Seed: 1}); err == nil {
			t.Errorf("Dies=%d accepted, want error", dies)
		}
	}
}

func TestPartitionRejectsTooFewGates(t *testing.T) {
	// The smallest die netgen produces: a handful of gates.
	n, err := netgen.Random(netgen.RandomOptions{Gates: 4, PIs: 2, POs: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(n, Options{Dies: 16, Seed: 1}); err == nil {
		t.Fatalf("%d gates split into 16 dies accepted, want error", n.NumGates())
	}
}

// TestPartitionTinyDie drives the recursion at its floor: a die barely
// large enough for a bipartition still extracts two valid sub-netlists
// with every gate accounted for.
func TestPartitionTinyDie(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 8, PIs: 2, POs: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(n, Options{Dies: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dies) != 2 {
		t.Fatalf("dies = %d, want 2", len(res.Dies))
	}
	gates := 0
	for d, die := range res.Dies {
		if err := die.Validate(); err != nil {
			t.Fatalf("die %d: %v", d, err)
		}
		gates += die.NumLogicGates() + len(die.FlipFlops())
	}
	if gates != n.NumLogicGates()+len(n.FlipFlops()) {
		t.Errorf("partition lost gates: %d of %d survive", gates, n.NumLogicGates()+len(n.FlipFlops()))
	}
}

// TestBondSingleDie is the degenerate stack: one die of a bipartition,
// nothing to bond against. Every cross-boundary pad stays floating and the
// result still validates.
func TestBondSingleDie(t *testing.T) {
	n := monolith(t, 200, 21)
	res, err := Partition(n, Options{Dies: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	solo := res.Dies[0]
	bonded, err := Bond("solo", []*netlist.Netlist{solo})
	if err != nil {
		t.Fatal(err)
	}
	if err := bonded.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(bonded.InboundTSVs()), len(solo.InboundTSVs()); got != want {
		t.Errorf("floating pads = %d, want %d (nothing bonds in a one-die stack)", got, want)
	}
}
