package partition

import (
	"testing"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

func TestBondRestoresFunction(t *testing.T) {
	// Partition a monolith, bond the dies back, and check the bonded
	// stack computes the same outputs as the original.
	n := monolith(t, 250, 11)
	res, err := Partition(n, Options{Dies: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	bonded, err := Bond("stack", res.Dies)
	if err != nil {
		t.Fatal(err)
	}
	// No floating pads: every cut net found its partner.
	for _, pad := range bonded.InboundTSVs() {
		t.Errorf("pad %s left floating after full bond", bonded.NameOf(pad))
	}

	// Functional equivalence on a handful of vectors.
	for trial := 0; trial < 8; trial++ {
		assign := map[netlist.SignalID]bool{}
		for i := range n.Gates {
			id := netlist.SignalID(i)
			switch n.TypeOf(id) {
			case netlist.GateInput, netlist.GateDFF:
				assign[id] = (i+trial)%3 == 0
			}
		}
		want, err := n.Evaluate(assign)
		if err != nil {
			t.Fatal(err)
		}
		bAssign := map[netlist.SignalID]bool{}
		for i := range bonded.Gates {
			id := netlist.SignalID(i)
			switch bonded.TypeOf(id) {
			case netlist.GateInput:
				orig, ok := n.SignalByName(bonded.NameOf(id))
				if !ok {
					t.Fatalf("input %q missing in monolith", bonded.NameOf(id))
				}
				bAssign[id] = assign[orig]
			case netlist.GateDFF:
				name := bonded.NameOf(id)
				orig, ok := n.SignalByName(name[len("dN_"):])
				if !ok {
					t.Fatalf("FF %q missing in monolith", name)
				}
				bAssign[id] = assign[orig]
			}
		}
		got, err := bonded.Evaluate(bAssign)
		if err != nil {
			t.Fatal(err)
		}
		for _, oi := range bonded.PrimaryOutputs() {
			port := bonded.Outputs[oi]
			name := port.Name[len("dN_"):]
			orig, ok := n.SignalByName(func() string {
				for _, o := range n.Outputs {
					if o.Name == name {
						return n.NameOf(o.Signal)
					}
				}
				return ""
			}())
			if !ok {
				continue
			}
			if got[port.Signal] != want[orig] {
				t.Errorf("trial %d: bonded PO %q = %v, monolith %v",
					trial, port.Name, got[port.Signal], want[orig])
			}
		}
	}
}

func TestBondPostBondTestability(t *testing.T) {
	// Pre-bond, the dies' TSV cones are dark; post-bond the same fault
	// universe lights up without any wrapper cells.
	n := monolith(t, 300, 13)
	res, err := Partition(n, Options{Dies: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	bonded, err := Bond("stack", res.Dies)
	if err != nil {
		t.Fatal(err)
	}
	preCov, postCov := 0.0, 0.0
	{
		die := res.Dies[0]
		sim := faultsim.New(die)
		pats := randomPats(sim, 256)
		camp, err := sim.RunCampaign(pats, faults.CollapsedList(die))
		if err != nil {
			t.Fatal(err)
		}
		preCov = camp.Coverage()
	}
	{
		sim := faultsim.New(bonded)
		pats := randomPats(sim, 256)
		camp, err := sim.RunCampaign(pats, faults.CollapsedList(bonded))
		if err != nil {
			t.Fatal(err)
		}
		postCov = camp.Coverage()
	}
	if postCov <= preCov {
		t.Errorf("post-bond coverage %.3f must beat unwrapped pre-bond %.3f", postCov, preCov)
	}
}

func randomPats(sim *faultsim.Simulator, n int) []faultsim.Pattern {
	var pats []faultsim.Pattern
	for i := 0; i < n; i++ {
		p := faultsim.NewPattern(sim.NumSources())
		for j := 0; j < sim.NumSources(); j++ {
			p.Set(j, (i*31+j*7)%5 < 2)
		}
		pats = append(pats, p)
	}
	return pats
}

func TestBondPartialStack(t *testing.T) {
	// Bonding only half the stack leaves the cross-boundary pads
	// floating but still valid.
	n := monolith(t, 200, 17)
	res, err := Partition(n, Options{Dies: 4, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	half, err := Bond("halfstack", res.Dies[:2])
	if err != nil {
		t.Fatal(err)
	}
	if err := half.Validate(); err != nil {
		t.Fatal(err)
	}
	// Some pads must remain (nets from dies 2-3).
	if len(half.InboundTSVs()) == 0 {
		t.Error("partial stack should keep floating pads toward the missing dies")
	}
}

func TestBondEmptyStack(t *testing.T) {
	if _, err := Bond("x", nil); err == nil {
		t.Error("empty stack must fail")
	}
}
