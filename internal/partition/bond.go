package partition

import (
	"fmt"
	"strings"

	"wcm3d/internal/netlist"
)

// Bond stitches a die stack back into one netlist, connecting every
// inbound TSV pad to the outbound TSV port of the same name on another
// die — the post-bond view of the 3D-IC. Pads created by Extract follow
// the naming convention TSV_IN "tsv_<net>" ↔ TSV_OUT "tsvout_<net>"; pads
// with no partner (a die tested standalone, or a partial stack) stay as
// floating TSV_IN pads and their ports remain outbound TSVs.
//
// The result is what post-bond testing exercises: with the TSVs bonded,
// the once-floating pads become ordinary nets driven from neighboring
// dies, and stack-level scan regains full controllability.
func Bond(stackName string, dies []*netlist.Netlist) (*netlist.Netlist, error) {
	if len(dies) == 0 {
		return nil, fmt.Errorf("partition: empty stack")
	}
	bonded := netlist.New(stackName)
	// Global rename: dieN/<name>, except bonded nets which unify.
	type padRef struct {
		die  int
		gate netlist.SignalID
	}
	localID := make([]map[netlist.SignalID]netlist.SignalID, len(dies))
	var pads []padRef // inbound pads awaiting their driver

	// Pass 1: create gates. Pads become BUFs wired in pass 2; gate names
	// are prefixed per die, except primary inputs, which unify by name
	// across dies (Extract replicates them).
	piOf := map[string]netlist.SignalID{}
	for d, die := range dies {
		localID[d] = make(map[netlist.SignalID]netlist.SignalID, die.NumGates())
		for i := range die.Gates {
			id := netlist.SignalID(i)
			g := die.Gate(id)
			switch g.Type {
			case netlist.GateInput:
				pi, ok := piOf[g.Name]
				if !ok {
					var err error
					pi, err = bonded.AddGate(netlist.GateInput, g.Name)
					if err != nil {
						return nil, err
					}
					piOf[g.Name] = pi
				}
				localID[d][id] = pi
			case netlist.GateTSVIn:
				// Placeholder buffer; fanin filled when the partner
				// port is found (or left as a pad if none).
				nid, err := bonded.AddGate(netlist.GateTSVIn, fmt.Sprintf("d%d_%s", d, g.Name))
				if err != nil {
					return nil, err
				}
				localID[d][id] = nid
				pads = append(pads, padRef{d, id})
			case netlist.GateDFF:
				// D pins may reference later gates (sequential loops);
				// create with a self-placeholder and rewire below.
				nid, err := bonded.AddGate(netlist.GateDFF, fmt.Sprintf("d%d_%s", d, g.Name), netlist.SignalID(0))
				if err != nil {
					return nil, err
				}
				localID[d][id] = nid
			default:
				fanin := make([]netlist.SignalID, len(g.Fanin))
				for pin, f := range g.Fanin {
					lf, ok := localID[d][f]
					if !ok {
						return nil, fmt.Errorf("partition: die %d gate %q references undeclared %q",
							d, g.Name, die.NameOf(f))
					}
					fanin[pin] = lf
				}
				nid, err := bonded.AddGate(g.Type, fmt.Sprintf("d%d_%s", d, g.Name), fanin...)
				if err != nil {
					return nil, err
				}
				localID[d][id] = nid
			}
		}
	}
	// Fix up flip-flop D pins now every gate exists.
	for d, die := range dies {
		for _, ff := range die.FlipFlops() {
			src := die.Gate(ff).Fanin[0]
			lf, ok := localID[d][src]
			if !ok {
				return nil, fmt.Errorf("partition: die %d FF %q D source %q missing",
					d, die.NameOf(ff), die.NameOf(src))
			}
			if err := bonded.RewireFanin(localID[d][ff], 0, lf); err != nil {
				return nil, err
			}
		}
	}
	// Index outbound TSV ports by net name.
	driverOf := map[string]netlist.SignalID{}
	for d, die := range dies {
		for _, oi := range die.OutboundTSVs() {
			port := die.Outputs[oi]
			net := strings.TrimPrefix(port.Name, "tsvout_")
			driverOf[net] = localID[d][port.Signal]
		}
	}
	// Pass 2: bond pads to their drivers.
	bondedCount := 0
	for _, p := range pads {
		die := dies[p.die]
		net := strings.TrimPrefix(die.NameOf(p.gate), "tsv_")
		drv, ok := driverOf[net]
		if !ok {
			continue // unbonded pad (partial stack): stays floating
		}
		id := localID[p.die][p.gate]
		g := bonded.Gate(id)
		g.Type = netlist.GateBuf
		g.Fanin = []netlist.SignalID{drv}
		bondedCount++
	}
	// Ports: POs carry over; outbound TSV ports whose net found a partner
	// are now internal nets and disappear, others stay.
	for d, die := range dies {
		for _, o := range die.Outputs {
			if o.Class == netlist.PortTSVOut {
				net := strings.TrimPrefix(o.Name, "tsvout_")
				if _, internal := driverOf[net]; internal && bondedCount > 0 {
					// Consumed by some pad — but only if a pad for this
					// net exists; conservatively keep the port when no
					// pad referenced it.
					if padExists(dies, net) {
						continue
					}
				}
			}
			if err := bonded.AddOutput(fmt.Sprintf("d%d_%s", d, o.Name), localID[d][o.Signal], o.Class); err != nil {
				return nil, err
			}
		}
	}
	if err := bonded.Validate(); err != nil {
		return nil, fmt.Errorf("partition: bonded stack invalid: %w", err)
	}
	return bonded, nil
}

func padExists(dies []*netlist.Netlist, net string) bool {
	for _, die := range dies {
		if _, ok := die.SignalByName("tsv_" + net); ok {
			return true
		}
	}
	return false
}
