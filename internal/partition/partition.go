// Package partition implements Fiduccia–Mattheyses (FM) min-cut netlist
// partitioning and recursive multi-die stacking — the substrate that
// replaces the 3D-Craft physical design flow's die-assignment step. Given
// a monolithic netlist, it produces the per-die sub-netlists with TSV
// ports at every cut net, in the same form the ITC'99 profiles of
// internal/netgen describe.
//
// The classic FM algorithm: start from a balanced random bipartition, then
// repeatedly move the highest-gain free cell (gain = cut nets removed −
// cut nets created) across the cut, lock it, and roll back to the best
// prefix of the move sequence; repeat passes until no pass improves the
// cut. Gains live in a bucket list so selection is O(1).
package partition

import (
	"fmt"
	"math/rand"

	"wcm3d/internal/netlist"
)

// Options configures a partitioning run.
type Options struct {
	// Dies is the number of dies to produce; must be a power of two
	// (recursive bipartition). Default 2.
	Dies int
	// BalanceTolerance is the allowed deviation from perfect balance as
	// a fraction (0.1 = each side within ±10% of half). Default 0.1.
	BalanceTolerance float64
	// MaxPasses bounds FM improvement passes per bipartition. Default 8.
	MaxPasses int
	// Seed makes the initial partition deterministic.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Dies == 0 {
		o.Dies = 2
	}
	if o.BalanceTolerance <= 0 {
		o.BalanceTolerance = 0.1
	}
	if o.MaxPasses <= 0 {
		o.MaxPasses = 8
	}
	return o
}

// Result is a completed partition.
type Result struct {
	// DieOf assigns each gate (by SignalID) to a die index.
	DieOf []int
	// CutNets counts nets crossing die boundaries (each becomes a TSV).
	CutNets int
	// Dies holds the extracted per-die netlists, with TSV_IN pads where
	// a signal arrives from another die and TSV_OUT ports where a signal
	// leaves.
	Dies []*netlist.Netlist
}

// Partition splits the netlist into Options.Dies dies.
func Partition(n *netlist.Netlist, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if opts.Dies < 2 || opts.Dies&(opts.Dies-1) != 0 {
		return nil, fmt.Errorf("partition: die count %d must be a power of two >= 2", opts.Dies)
	}
	if n.NumGates() < opts.Dies {
		return nil, fmt.Errorf("partition: %d gates cannot fill %d dies", n.NumGates(), opts.Dies)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	dieOf := make([]int, n.NumGates())
	// Recursive bipartition: at each level, split every current group in
	// two, relabeling dies as 2*d and 2*d+1.
	groups := 1
	for groups < opts.Dies {
		next := make([]int, n.NumGates())
		for g := 0; g < groups; g++ {
			var members []netlist.SignalID
			for i := range dieOf {
				if dieOf[i] == g {
					members = append(members, netlist.SignalID(i))
				}
			}
			side := bipartition(n, members, opts, rng)
			for k, id := range members {
				next[id] = 2*g + side[k]
			}
		}
		dieOf = next
		groups *= 2
	}

	res := &Result{DieOf: dieOf}
	res.CutNets = countCut(n, dieOf)
	dies, err := Extract(n, dieOf, opts.Dies)
	if err != nil {
		return nil, err
	}
	res.Dies = dies
	return res, nil
}

// bipartition runs FM over the given member set and returns 0/1 side
// labels (indexed like members).
func bipartition(n *netlist.Netlist, members []netlist.SignalID, opts Options, rng *rand.Rand) []int {
	m := len(members)
	side := make([]int, m)
	for i := range side {
		side[i] = i & 1
	}
	rng.Shuffle(m, func(i, j int) { side[i], side[j] = side[j], side[i] })
	if m < 4 {
		return side
	}

	idxOf := make(map[netlist.SignalID]int, m)
	for i, id := range members {
		idxOf[id] = i
	}
	// Nets restricted to the member set: driver + member sinks.
	type net struct{ cells []int }
	var nets []net
	fanouts := n.Fanouts()
	for _, id := range members {
		cells := []int{idxOf[id]}
		for _, fo := range fanouts[id] {
			if j, ok := idxOf[fo]; ok {
				cells = append(cells, j)
			}
		}
		if len(cells) > 1 {
			nets = append(nets, net{cells})
		}
	}
	netsOf := make([][]int, m)
	for ni, nt := range nets {
		for _, c := range nt.cells {
			netsOf[c] = append(netsOf[c], ni)
		}
	}

	half := m / 2
	lo := half - int(opts.BalanceTolerance*float64(half)) - 1
	hi := half + int(opts.BalanceTolerance*float64(half)) + 1
	count0 := 0
	for _, s := range side {
		if s == 0 {
			count0++
		}
	}

	cut := func() int {
		c := 0
		for _, nt := range nets {
			s0 := side[nt.cells[0]]
			for _, cell := range nt.cells[1:] {
				if side[cell] != s0 {
					c++
					break
				}
			}
		}
		return c
	}

	gain := func(cell int) int {
		g := 0
		for _, ni := range netsOf[cell] {
			same, other := 0, 0
			for _, c := range nets[ni].cells {
				if c == cell {
					continue
				}
				if side[c] == side[cell] {
					same++
				} else {
					other++
				}
			}
			if same == 0 {
				g++ // moving uncuts this net
			}
			if other == 0 {
				g-- // moving cuts this net
			}
		}
		return g
	}

	best := cut()
	for pass := 0; pass < opts.MaxPasses; pass++ {
		locked := make([]bool, m)
		type move struct {
			cell int
			cut  int
		}
		var seq []move
		cur := best
		for moved := 0; moved < m; moved++ {
			// Highest-gain unlocked cell whose move keeps balance.
			bestCell, bestGain := -1, -1<<30
			for c := 0; c < m; c++ {
				if locked[c] {
					continue
				}
				// Balance: moving from side0 decrements count0.
				nc := count0
				if side[c] == 0 {
					nc--
				} else {
					nc++
				}
				if nc < lo || nc > hi {
					continue
				}
				if g := gain(c); g > bestGain {
					bestGain, bestCell = g, c
				}
			}
			if bestCell < 0 {
				break
			}
			if side[bestCell] == 0 {
				count0--
			} else {
				count0++
			}
			side[bestCell] = 1 - side[bestCell]
			locked[bestCell] = true
			cur -= bestGain
			seq = append(seq, move{bestCell, cur})
		}
		// Roll back to the best prefix.
		bestIdx, bestCut := -1, best
		for i, mv := range seq {
			if mv.cut < bestCut {
				bestCut, bestIdx = mv.cut, i
			}
		}
		for i := len(seq) - 1; i > bestIdx; i-- {
			c := seq[i].cell
			if side[c] == 0 {
				count0--
			} else {
				count0++
			}
			side[c] = 1 - side[c]
		}
		if bestCut >= best {
			break // no improvement this pass
		}
		best = bestCut
	}
	return side
}

func countCut(n *netlist.Netlist, dieOf []int) int {
	cut := 0
	fanouts := n.Fanouts()
	for i := range n.Gates {
		id := netlist.SignalID(i)
		crossed := map[int]bool{}
		for _, fo := range fanouts[id] {
			if dieOf[fo] != dieOf[id] && !crossed[dieOf[fo]] {
				crossed[dieOf[fo]] = true
				cut++ // one TSV per (net, destination die)
			}
		}
	}
	return cut
}

// Extract materializes per-die netlists from a die assignment: each die
// keeps its own gates; a signal arriving from another die becomes a
// TSV_IN pad, and a signal consumed by another die gains a TSV_OUT port.
// Primary inputs are replicated onto every die that reads them (bond pads
// are accessible from any die in this flow); output ports stay with the
// die that drives them.
func Extract(n *netlist.Netlist, dieOf []int, dies int) ([]*netlist.Netlist, error) {
	out := make([]*netlist.Netlist, dies)
	maps := make([]map[netlist.SignalID]netlist.SignalID, dies)
	for d := range out {
		out[d] = netlist.New(fmt.Sprintf("%s_die%d", n.Name, d))
		maps[d] = make(map[netlist.SignalID]netlist.SignalID)
	}
	// localOf returns the die-local signal for a foreign or local source,
	// creating input pads as needed.
	localOf := func(d int, src netlist.SignalID) (netlist.SignalID, error) {
		if id, ok := maps[d][src]; ok {
			return id, nil
		}
		g := n.Gate(src)
		var id netlist.SignalID
		var err error
		switch {
		case g.Type == netlist.GateInput:
			id, err = out[d].AddGate(netlist.GateInput, g.Name)
		case dieOf[src] != d:
			id, err = out[d].AddGate(netlist.GateTSVIn, "tsv_"+g.Name)
		default:
			return netlist.InvalidSignal, fmt.Errorf("partition: %q used on die %d before definition", g.Name, d)
		}
		if err != nil {
			return netlist.InvalidSignal, err
		}
		maps[d][src] = id
		return id, nil
	}

	// Flip-flop D pins may reference signals defined later (sequential
	// loops), so DFFs are created with a placeholder D and rewired below.
	placeholder := make([]netlist.SignalID, dies)
	for d := range placeholder {
		placeholder[d] = netlist.InvalidSignal
	}
	holdOf := func(d int) (netlist.SignalID, error) {
		if placeholder[d] != netlist.InvalidSignal {
			return placeholder[d], nil
		}
		id, err := out[d].AddGate(netlist.GateConst0, "dff_placeholder")
		if err != nil {
			return netlist.InvalidSignal, err
		}
		placeholder[d] = id
		return id, nil
	}
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		d := dieOf[id]
		switch {
		case g.Type == netlist.GateInput:
			if _, err := localOf(d, id); err != nil {
				return nil, err
			}
		case g.Type == netlist.GateDFF:
			ph, err := holdOf(d)
			if err != nil {
				return nil, err
			}
			lid, err := out[d].AddGate(netlist.GateDFF, g.Name, ph)
			if err != nil {
				return nil, err
			}
			maps[d][id] = lid
		default:
			fanin := make([]netlist.SignalID, len(g.Fanin))
			for pin, src := range g.Fanin {
				ls, err := localOf(d, src)
				if err != nil {
					return nil, err
				}
				fanin[pin] = ls
			}
			lid, err := out[d].AddGate(g.Type, g.Name, fanin...)
			if err != nil {
				return nil, err
			}
			maps[d][id] = lid
		}
	}
	// Flip-flop D pins reference signals that may be defined later in
	// TopoOrder (sequential loops); fix them up now.
	for _, ff := range n.FlipFlops() {
		d := dieOf[ff]
		src := n.Gate(ff).Fanin[0]
		ls, err := localOf(d, src)
		if err != nil {
			return nil, err
		}
		if err := out[d].RewireFanin(maps[d][ff], 0, ls); err != nil {
			return nil, err
		}
	}
	// Outbound TSV ports: every net consumed by another die.
	emitted := make([]map[netlist.SignalID]bool, dies)
	for d := range emitted {
		emitted[d] = make(map[netlist.SignalID]bool)
	}
	fanouts := n.Fanouts()
	for i := range n.Gates {
		id := netlist.SignalID(i)
		if n.TypeOf(id) == netlist.GateInput {
			continue
		}
		d := dieOf[id]
		needed := false
		for _, fo := range fanouts[id] {
			if dieOf[fo] != d {
				needed = true
				break
			}
		}
		if needed && !emitted[d][id] {
			emitted[d][id] = true
			if err := out[d].AddOutput("tsvout_"+n.NameOf(id), maps[d][id], netlist.PortTSVOut); err != nil {
				return nil, err
			}
		}
	}
	// Original output ports stay with their driving die.
	for _, o := range n.Outputs {
		d := dieOf[o.Signal]
		if err := out[d].AddOutput(o.Name, maps[d][o.Signal], o.Class); err != nil {
			return nil, err
		}
	}
	for d := range out {
		if err := out[d].Validate(); err != nil {
			return nil, fmt.Errorf("partition: die %d invalid: %w", d, err)
		}
	}
	return out, nil
}
