package partition

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

func monolith(t *testing.T, gates int, seed int64) *netlist.Netlist {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{Gates: gates, FFs: gates / 12, PIs: 6, POs: 4, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestPartitionBasics(t *testing.T) {
	n := monolith(t, 400, 1)
	res, err := Partition(n, Options{Dies: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dies) != 4 {
		t.Fatalf("dies = %d, want 4", len(res.Dies))
	}
	// Every gate assigned to a valid die.
	counts := make([]int, 4)
	for i, d := range res.DieOf {
		if d < 0 || d >= 4 {
			t.Fatalf("gate %d assigned to die %d", i, d)
		}
		counts[d]++
	}
	// Rough balance: no die under 10% of the total.
	for d, c := range counts {
		if c < n.NumGates()/10 {
			t.Errorf("die %d holds only %d of %d gates", d, c, n.NumGates())
		}
	}
	// Each extracted die validates and has TSVs.
	totalIn, totalOut := 0, 0
	for _, die := range res.Dies {
		if err := die.Validate(); err != nil {
			t.Fatal(err)
		}
		totalIn += len(die.InboundTSVs())
		totalOut += len(die.OutboundTSVs())
	}
	if totalIn == 0 || totalOut == 0 {
		t.Error("a 4-die partition of connected logic must cut some nets")
	}
	if res.CutNets == 0 {
		t.Error("CutNets must be positive")
	}
}

func TestPartitionPreservesGateCount(t *testing.T) {
	n := monolith(t, 300, 2)
	res, err := Partition(n, Options{Dies: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Logic gates (excluding new pads) must be conserved.
	total := 0
	for _, die := range res.Dies {
		total += die.NumLogicGates()
	}
	if total != n.NumLogicGates() {
		t.Errorf("logic gates: %d after partition, %d before", total, n.NumLogicGates())
	}
	// Flip-flops conserved too.
	ffs := 0
	for _, die := range res.Dies {
		ffs += len(die.FlipFlops())
	}
	if ffs != len(n.FlipFlops()) {
		t.Errorf("flip-flops: %d after, %d before", ffs, len(n.FlipFlops()))
	}
}

func TestPartitionFunctionalEquivalence(t *testing.T) {
	// Evaluate the monolith and the stitched dies on the same inputs:
	// every outbound TSV value on die A must equal the signal's value in
	// the monolith, and original POs must match.
	n := monolith(t, 200, 3)
	res, err := Partition(n, Options{Dies: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assign := map[netlist.SignalID]bool{}
	flip := false
	for i := range n.Gates {
		id := netlist.SignalID(i)
		switch n.TypeOf(id) {
		case netlist.GateInput, netlist.GateDFF:
			assign[id] = flip
			flip = !flip
		}
	}
	want, err := n.Evaluate(assign)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate dies in order 0,1 repeatedly until TSV values settle (a
	// 2-die cut is acyclic per net but both directions exist, so iterate).
	vals := make([]map[netlist.SignalID]bool, 2)
	for d, die := range res.Dies {
		vals[d] = map[netlist.SignalID]bool{}
		for i := range die.Gates {
			id := netlist.SignalID(i)
			switch die.TypeOf(id) {
			case netlist.GateInput:
				orig, ok := n.SignalByName(die.NameOf(id))
				if !ok {
					t.Fatalf("replicated input %q not in monolith", die.NameOf(id))
				}
				vals[d][id] = assign[orig]
			case netlist.GateDFF:
				orig, ok := n.SignalByName(die.NameOf(id))
				if !ok {
					t.Fatalf("flip-flop %q not in monolith", die.NameOf(id))
				}
				vals[d][id] = assign[orig]
			case netlist.GateTSVIn:
				vals[d][id] = false // filled by stitching below
			}
		}
	}
	for iter := 0; iter < 4; iter++ {
		for d, die := range res.Dies {
			got, err := die.Evaluate(vals[d])
			if err != nil {
				t.Fatal(err)
			}
			// Export this die's outbound TSVs into the other die's pads.
			other := res.Dies[1-d]
			for _, oi := range die.OutboundTSVs() {
				port := die.Outputs[oi]
				padName := "tsv_" + port.Name[len("tsvout_"):]
				if pad, ok := other.SignalByName(padName); ok {
					vals[1-d][pad] = got[port.Signal]
				}
			}
		}
	}
	// Check: original POs match the monolith.
	for d, die := range res.Dies {
		got, err := die.Evaluate(vals[d])
		if err != nil {
			t.Fatal(err)
		}
		for _, oi := range die.PrimaryOutputs() {
			port := die.Outputs[oi]
			orig, ok := n.SignalByName(die.NameOf(port.Signal))
			if !ok {
				continue // port signal renamed (pad); skip
			}
			if got[port.Signal] != want[orig] {
				t.Errorf("die %d PO %q = %v, monolith says %v", d, port.Name, got[port.Signal], want[orig])
			}
		}
	}
}

func TestFMReducesCut(t *testing.T) {
	n := monolith(t, 500, 5)
	// Compare the FM result against a random balanced assignment.
	res, err := Partition(n, Options{Dies: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	randomCut := 0
	dieOf := make([]int, n.NumGates())
	for i := range dieOf {
		dieOf[i] = i & 1
	}
	randomCut = countCutForTest(n, dieOf)
	if res.CutNets >= randomCut {
		t.Errorf("FM cut %d not better than random %d", res.CutNets, randomCut)
	}
}

func countCutForTest(n *netlist.Netlist, dieOf []int) int {
	return countCut(n, dieOf)
}

func TestPartitionRejectsBadOptions(t *testing.T) {
	n := monolith(t, 100, 7)
	if _, err := Partition(n, Options{Dies: 3}); err == nil {
		t.Error("non-power-of-two die count must fail")
	}
	tiny, err := netlist.ParseString("tiny", "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(tiny, Options{Dies: 4}); err == nil {
		t.Error("partitioning 2 gates into 4 dies must fail")
	}
}

func TestPartitionDeterministic(t *testing.T) {
	n := monolith(t, 300, 9)
	r1, err := Partition(n, Options{Dies: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(n, Options{Dies: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.CutNets != r2.CutNets {
		t.Error("partition not deterministic")
	}
	for i := range r1.DieOf {
		if r1.DieOf[i] != r2.DieOf[i] {
			t.Fatalf("assignment differs at gate %d", i)
		}
	}
}
