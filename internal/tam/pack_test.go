package tam

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestPackSingleDie(t *testing.T) {
	s, err := Pack([]DieSpec{{Name: "a", Designs: []Design{{Width: 2, Cycles: 50}}}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MakespanCycles != 50 || s.SerialCycles != 50 {
		t.Errorf("makespan/serial = %d/%d, want 50/50", s.MakespanCycles, s.SerialCycles)
	}
	if len(s.Slots) != 1 || s.Slots[0].StartCycle != 0 || s.Slots[0].FirstWire != 0 {
		t.Errorf("slot = %+v", s.Slots)
	}
}

func TestPackEmptyStack(t *testing.T) {
	s, err := Pack(nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.MakespanCycles != 0 || s.SerialCycles != 0 || len(s.Slots) != 0 {
		t.Errorf("empty stack schedule = %+v", s)
	}
}

func TestPackReclaimsIdleWidth(t *testing.T) {
	// A occupies half the TAM for 100 cycles; B and C each need the other
	// half for 40. A shelf packer would open a new 40-cycle shelf for C
	// after the (A, B) row; reclaiming the width B vacates at cycle 40
	// keeps everything inside A's shadow.
	dies := []DieSpec{
		{Name: "a", Designs: []Design{{Width: 2, Cycles: 100}}},
		{Name: "b", Designs: []Design{{Width: 2, Cycles: 40}}},
		{Name: "c", Designs: []Design{{Width: 2, Cycles: 40}}},
	}
	s, err := Pack(dies, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MakespanCycles != 100 {
		t.Errorf("makespan = %d, want 100 (c must reuse b's wires)", s.MakespanCycles)
	}
	if s.SerialCycles != 180 {
		t.Errorf("serial = %d, want 180", s.SerialCycles)
	}
}

func TestPackDeterministicAndOrderIndependent(t *testing.T) {
	dies := []DieSpec{
		{Name: "b12/Die0", Designs: []Design{{1, 400}, {2, 210}, {4, 120}}},
		{Name: "b12/Die1", Designs: []Design{{1, 900}, {3, 330}, {6, 180}}},
		{Name: "b12/Die2", Designs: []Design{{1, 700}, {2, 360}, {5, 160}}},
		{Name: "b12/Die3", Designs: []Design{{1, 120}, {2, 70}}},
	}
	first, err := Pack(dies, 8)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Pack(dies, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Errorf("repeated pack differs:\n%+v\n%+v", first, again)
	}
	// The packer sorts by (test length, name), so caller order must not
	// leak into the schedule.
	perm := []DieSpec{dies[2], dies[0], dies[3], dies[1]}
	shuffled, err := Pack(perm, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, shuffled) {
		t.Errorf("input order leaked into the schedule:\n%+v\n%+v", first, shuffled)
	}
}

// TestPackPropertiesRandom fuzzes the invariants the scheduler promises:
// structural validity (budget, no overlap) and makespan never worse than
// serial one-die-at-a-time testing.
func TestPackPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(64)
		nDies := 1 + rng.Intn(8)
		dies := make([]DieSpec, nDies)
		for i := range dies {
			nDesigns := 1 + rng.Intn(5)
			designs := make([]Design, nDesigns)
			for j := range designs {
				designs[j] = Design{Width: 1 + rng.Intn(width), Cycles: rng.Intn(5000)}
			}
			dies[i] = DieSpec{Name: string(rune('a' + i)), Designs: designs}
		}
		s, err := Pack(dies, width)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(s.Slots) != nDies {
			t.Fatalf("trial %d: %d slots for %d dies", trial, len(s.Slots), nDies)
		}
		if s.MakespanCycles > s.SerialCycles {
			t.Fatalf("trial %d: makespan %d exceeds serial %d", trial, s.MakespanCycles, s.SerialCycles)
		}
		if u := s.Utilization(); u < 0 || u > 1 {
			t.Fatalf("trial %d: utilization %f out of range", trial, u)
		}
	}
}

func TestPackErrors(t *testing.T) {
	ok := []DieSpec{{Name: "a", Designs: []Design{{Width: 1, Cycles: 10}}}}
	if _, err := Pack(ok, 0); err == nil {
		t.Error("zero-wire budget must fail")
	}
	wide := []DieSpec{{Name: "a", Designs: []Design{{Width: 9, Cycles: 10}}}}
	if _, err := Pack(wide, 8); err == nil {
		t.Error("die wider than the budget must fail")
	}
	bad := []DieSpec{{Name: "a", Designs: []Design{{Width: 0, Cycles: 10}}}}
	if _, err := Pack(bad, 8); err == nil {
		t.Error("zero-width design must fail")
	}
	neg := []DieSpec{{Name: "a", Designs: []Design{{Width: 1, Cycles: -1}}}}
	if _, err := Pack(neg, 8); err == nil {
		t.Error("negative-cycle design must fail")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	s := &Schedule{
		TotalWidth:     4,
		MakespanCycles: 100,
		Slots: []Slot{
			{Die: "a", Width: 2, FirstWire: 0, StartCycle: 0, EndCycle: 60},
			{Die: "b", Width: 2, FirstWire: 1, StartCycle: 40, EndCycle: 90},
		},
	}
	if err := s.Validate(); err == nil {
		t.Error("overlapping slots must fail validation")
	}
	s.Slots[1].FirstWire = 2
	if err := s.Validate(); err != nil {
		t.Errorf("disjoint wire ranges must pass: %v", err)
	}
	s.Slots[1].EndCycle = 101
	if err := s.Validate(); err == nil {
		t.Error("slot past the makespan must fail validation")
	}
}

func TestUtilization(t *testing.T) {
	s := &Schedule{
		TotalWidth:     4,
		MakespanCycles: 100,
		Slots: []Slot{
			{Die: "a", Width: 2, FirstWire: 0, StartCycle: 0, EndCycle: 100},
			{Die: "b", Width: 2, FirstWire: 2, StartCycle: 0, EndCycle: 50},
		},
	}
	if got := s.Utilization(); got != 0.75 {
		t.Errorf("utilization = %f, want 0.75", got)
	}
	empty := &Schedule{TotalWidth: 4}
	if got := empty.Utilization(); got != 0 {
		t.Errorf("empty utilization = %f, want 0", got)
	}
}

// BenchmarkPack prices the packer alone at paper scale: 24 dies, rich
// Pareto sets, a 64-wire TAM.
func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	dies := make([]DieSpec, 24)
	for i := range dies {
		var designs []Design
		cycles := 20000 + rng.Intn(40000)
		for w := 1; w <= 16; w++ {
			designs = append(designs, Design{Width: w, Cycles: cycles / w})
		}
		dies[i] = DieSpec{Name: string(rune('a' + i)), Designs: designs}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pack(dies, 64); err != nil {
			b.Fatal(err)
		}
	}
}
