package tam

import (
	"fmt"

	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
)

// Enumerate sweeps a die's wrapper designs: for every TAM width from 1 to
// maxWidth it stitches the die's scan cells (functional flip-flops plus
// the plan's dedicated wrapper cells) into that many chains with
// scan.BuildChains and prices the result in tester cycles for the die's
// pattern count. It returns the Pareto frontier, narrowest design first:
// a wider design is kept only when it is strictly faster, so the packer
// never considers a rectangle that wastes wires.
//
// The frontier is never empty — width 1 is always a design. Chain counts
// above the die's scan-cell count collapse to one cell per chain and are
// dominated, so the frontier naturally stops growing there.
func Enumerate(n *netlist.Netlist, pl *place.Placement, a *scan.Assignment, patterns, maxWidth int) ([]Design, error) {
	if maxWidth < 1 {
		return nil, fmt.Errorf("tam: need at least one TAM wire, got %d", maxWidth)
	}
	if patterns < 0 {
		return nil, fmt.Errorf("tam: negative pattern count %d", patterns)
	}
	var frontier []Design
	best := -1
	for w := 1; w <= maxWidth; w++ {
		plan, err := scan.BuildChains(n, pl, a, w)
		if err != nil {
			return nil, err
		}
		cycles := plan.TestCycles(patterns)
		if best < 0 || cycles < best {
			frontier = append(frontier, Design{Width: w, Cycles: cycles})
			best = cycles
		}
		// Once every cell sits in its own chain, wider designs cannot
		// shorten the shift depth any further.
		if plan.MaxLength() <= 1 {
			break
		}
	}
	return frontier, nil
}
