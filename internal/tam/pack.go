package tam

import (
	"fmt"
	"sort"
)

// Pack builds the stack schedule: one rectangle per die placed into the
// (totalWidth × time) plane, minimizing makespan with best-fit-decreasing
// over a wire-availability skyline.
//
// The heuristic, in rectangle-packing terms:
//
//  1. Decreasing: dies are processed longest-test-first (each die's
//     fastest eligible design is its length), so the big rectangles shape
//     the skyline and the small ones fill the gaps they leave.
//
//  2. Best fit: for each die, every Pareto design is tried at every wire
//     offset. A candidate's start time is the latest busy-until time
//     among the wires it would occupy — placing on wires an earlier die
//     has vacated reclaims that idle width. The candidate with the
//     earliest finish wins; ties prefer the narrower design (leaving
//     wires for later dies), then the lower offset (determinism).
//
// Pack is fully deterministic in its inputs: identical specs and budget
// yield an identical schedule, byte for byte. The makespan never exceeds
// SerialCycles, because "start after everything currently scheduled, at
// the fastest design" is always among the candidates considered.
func Pack(dies []DieSpec, totalWidth int) (*Schedule, error) {
	if totalWidth < 1 {
		return nil, fmt.Errorf("tam: need at least one TAM wire, got %d", totalWidth)
	}
	type entry struct {
		spec     DieSpec
		eligible []Design
		fastest  int // min cycles among eligible designs
	}
	entries := make([]entry, 0, len(dies))
	serial := 0
	for _, d := range dies {
		e := entry{spec: d, fastest: -1}
		for _, des := range d.Designs {
			if des.Width < 1 || des.Cycles < 0 {
				return nil, fmt.Errorf("tam: die %s has a malformed design %+v", d.Name, des)
			}
			if des.Width > totalWidth {
				continue
			}
			e.eligible = append(e.eligible, des)
			if e.fastest < 0 || des.Cycles < e.fastest {
				e.fastest = des.Cycles
			}
		}
		if len(e.eligible) == 0 {
			return nil, fmt.Errorf("tam: die %s has no design within the %d-wire budget", d.Name, totalWidth)
		}
		serial += e.fastest
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].fastest != entries[j].fastest {
			return entries[i].fastest > entries[j].fastest
		}
		return entries[i].spec.Name < entries[j].spec.Name
	})

	// avail[w] is the cycle at which TAM wire w becomes free.
	avail := make([]int, totalWidth)
	sched := &Schedule{TotalWidth: totalWidth, SerialCycles: serial}
	for _, e := range entries {
		var best Slot
		found := false
		for _, des := range e.eligible {
			for off := 0; off+des.Width <= totalWidth; off++ {
				start := 0
				for _, t := range avail[off : off+des.Width] {
					if t > start {
						start = t
					}
				}
				cand := Slot{
					Die:        e.spec.Name,
					Width:      des.Width,
					FirstWire:  off,
					StartCycle: start,
					EndCycle:   start + des.Cycles,
				}
				if !found || betterFit(cand, best) {
					best, found = cand, true
				}
			}
		}
		for w := best.FirstWire; w < best.FirstWire+best.Width; w++ {
			avail[w] = best.EndCycle
		}
		if best.EndCycle > sched.MakespanCycles {
			sched.MakespanCycles = best.EndCycle
		}
		sched.Slots = append(sched.Slots, best)
	}
	sortSlots(sched.Slots)
	return sched, nil
}

// betterFit ranks placement candidates: earliest finish, then narrowest
// width, then lowest wire offset.
func betterFit(a, b Slot) bool {
	if a.EndCycle != b.EndCycle {
		return a.EndCycle < b.EndCycle
	}
	if a.Width != b.Width {
		return a.Width < b.Width
	}
	return a.FirstWire < b.FirstWire
}
