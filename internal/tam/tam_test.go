package tam

import (
	"testing"

	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
)

func enumDie(t *testing.T, seed int64) (*netlist.Netlist, *place.Placement, *scan.Assignment) {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: 200, FFs: 10, PIs: 5, POs: 3, InboundTSVs: 6, OutboundTSVs: 5, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return n, pl, scan.FullWrap(n)
}

func TestEnumerateParetoFrontier(t *testing.T) {
	n, pl, a := enumDie(t, 42)
	const patterns = 80
	designs, err := Enumerate(n, pl, a, patterns, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(designs) == 0 {
		t.Fatal("empty frontier")
	}
	if designs[0].Width != 1 {
		t.Errorf("frontier must start at width 1, got %d", designs[0].Width)
	}
	for i := 1; i < len(designs); i++ {
		if designs[i].Width <= designs[i-1].Width {
			t.Errorf("widths not increasing: %+v", designs)
		}
		if designs[i].Cycles >= designs[i-1].Cycles {
			t.Errorf("design %+v does not improve on %+v", designs[i], designs[i-1])
		}
	}
	// Every frontier point must price exactly as BuildChains does.
	for _, d := range designs {
		plan, err := scan.BuildChains(n, pl, a, d.Width)
		if err != nil {
			t.Fatal(err)
		}
		if got := plan.TestCycles(patterns); got != d.Cycles {
			t.Errorf("width %d: frontier says %d cycles, BuildChains says %d", d.Width, d.Cycles, got)
		}
	}
}

func TestEnumerateZeroPatterns(t *testing.T) {
	n, pl, a := enumDie(t, 42)
	designs, err := Enumerate(n, pl, a, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Zero patterns cost zero cycles at any width; only width 1 survives.
	if len(designs) != 1 || designs[0] != (Design{Width: 1, Cycles: 0}) {
		t.Errorf("frontier = %+v, want [{1 0}]", designs)
	}
}

func TestEnumerateStopsAtCellCount(t *testing.T) {
	n, pl, a := enumDie(t, 42)
	// 10 FFs + 11 dedicated wrapper cells = 21 scan cells.
	designs, err := Enumerate(n, pl, a, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	last := designs[len(designs)-1]
	if last.Width > 21 {
		t.Errorf("frontier reaches width %d with only 21 scan cells", last.Width)
	}
}

func TestEnumerateErrors(t *testing.T) {
	n, pl, a := enumDie(t, 42)
	if _, err := Enumerate(n, pl, a, 10, 0); err == nil {
		t.Error("zero maxWidth must fail")
	}
	if _, err := Enumerate(n, pl, a, -1, 8); err == nil {
		t.Error("negative patterns must fail")
	}
}

// TestEnumerateThenPack closes the loop on real dies: enumerate two
// generated dies and pack them into a shared TAM.
func TestEnumerateThenPack(t *testing.T) {
	var specs []DieSpec
	for i, seed := range []int64{42, 43} {
		n, pl, a := enumDie(t, seed)
		designs, err := Enumerate(n, pl, a, 60+10*i, 8)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, DieSpec{Name: n.Name, Designs: designs})
	}
	specs[0].Name, specs[1].Name = "die0", "die1"
	s, err := Pack(specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MakespanCycles > s.SerialCycles {
		t.Errorf("makespan %d exceeds serial %d", s.MakespanCycles, s.SerialCycles)
	}
	if s.MakespanCycles <= 0 {
		t.Error("empty makespan for non-trivial dies")
	}
}
