// Package tam solves the stage that follows wrapper-cell minimization in
// any real pre-bond test flow: wrapper/TAM co-optimization and stack test
// scheduling. Given wrapped dies, a tester offers a fixed number of test
// access mechanism (TAM) wires; every wire drives one scan chain, so a
// die tested over w wires shifts through chains of depth ~cells/w and its
// test occupies a w × cycles rectangle of tester capacity. Minimizing the
// stack's total test time is then 2D rectangle packing into a
// (total width × time) plane — the classic formulation of Iyengar,
// Chakrabarty and Marinissen, and of Islam et al.'s rectangle-packing
// co-optimization (arXiv:1008.3320, arXiv:1008.4446).
//
// The package splits the problem the way the literature does:
//
//   - Enumerate sweeps a die's chain counts (internal/scan.BuildChains)
//     and keeps the Pareto frontier of (TAM width, test cycles)
//     rectangles — widening the TAM only earns a design a slot on the
//     frontier if it actually shortens the test.
//
//   - Pack places one rectangle per die into the plane with a
//     best-fit-decreasing heuristic over a wire-availability skyline:
//     longest tests place first, every Pareto design × wire offset is
//     scored, and the earliest-finishing fit wins, which reclaims idle
//     width left behind by finished dies.
//
// The result is deterministic, overlap-free, never exceeds the wire
// budget, and its makespan never exceeds serial one-die-at-a-time testing
// (a candidate the greedy always considers). wcm3d.Schedule is the facade
// entry; cmd/schedule and the wcmd daemon's POST /v1/schedules expose it.
package tam

import (
	"fmt"
	"sort"
)

// Design is one wrapper configuration of a die: testing over Width TAM
// wires (one scan chain per wire) takes Cycles tester cycles.
type Design struct {
	Width  int `json:"width"`
	Cycles int `json:"cycles"`
}

// DieSpec is one die to schedule: its display name and the Pareto set of
// designs Enumerate produced for it.
type DieSpec struct {
	Name    string
	Designs []Design
}

// Slot is one die's placement in the packed schedule: it occupies TAM
// wires [FirstWire, FirstWire+Width) from StartCycle to EndCycle.
type Slot struct {
	Die        string `json:"die"`
	Width      int    `json:"width"`
	FirstWire  int    `json:"first_wire"`
	StartCycle int    `json:"start_cycle"`
	EndCycle   int    `json:"end_cycle"`
}

// Cycles is the slot's test length.
func (s Slot) Cycles() int { return s.EndCycle - s.StartCycle }

// Schedule is a packed pre-bond stack test schedule.
type Schedule struct {
	// TotalWidth is the TAM wire budget the schedule was packed into.
	TotalWidth int `json:"total_width"`
	// MakespanCycles is the stack's total test time: the latest EndCycle.
	MakespanCycles int `json:"makespan_cycles"`
	// SerialCycles is the one-die-at-a-time reference: each die tested
	// alone at its fastest design within the budget, summed. The packer
	// guarantees MakespanCycles <= SerialCycles.
	SerialCycles int `json:"serial_cycles"`
	// Slots holds one placement per die, in start-time order.
	Slots []Slot `json:"slots"`
}

// Utilization is the fraction of the width × makespan plane doing useful
// shifting: sum(width_i × cycles_i) / (TotalWidth × MakespanCycles).
func (s *Schedule) Utilization() float64 {
	if s.MakespanCycles == 0 || s.TotalWidth == 0 {
		return 0
	}
	area := 0
	for _, sl := range s.Slots {
		area += sl.Width * sl.Cycles()
	}
	return float64(area) / float64(s.TotalWidth*s.MakespanCycles)
}

// Validate checks the schedule's structural invariants: every slot inside
// the wire budget and the makespan, and no two slots overlapping in both
// time and wire range. Pack output always passes; the method exists so
// tests and downstream consumers can assert it cheaply.
func (s *Schedule) Validate() error {
	for i, a := range s.Slots {
		if a.Width < 1 || a.FirstWire < 0 || a.FirstWire+a.Width > s.TotalWidth {
			return fmt.Errorf("tam: slot %s exceeds the %d-wire budget (wires %d..%d)",
				a.Die, s.TotalWidth, a.FirstWire, a.FirstWire+a.Width)
		}
		if a.StartCycle < 0 || a.EndCycle < a.StartCycle || a.EndCycle > s.MakespanCycles {
			return fmt.Errorf("tam: slot %s has a bad time range [%d, %d)", a.Die, a.StartCycle, a.EndCycle)
		}
		for _, b := range s.Slots[i+1:] {
			timeOverlap := a.StartCycle < b.EndCycle && b.StartCycle < a.EndCycle
			wireOverlap := a.FirstWire < b.FirstWire+b.Width && b.FirstWire < a.FirstWire+a.Width
			if timeOverlap && wireOverlap {
				return fmt.Errorf("tam: slots %s and %s overlap", a.Die, b.Die)
			}
		}
	}
	return nil
}

// sortSlots orders slots by start time, then first wire, for stable output.
func sortSlots(slots []Slot) {
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].StartCycle != slots[j].StartCycle {
			return slots[i].StartCycle < slots[j].StartCycle
		}
		return slots[i].FirstWire < slots[j].FirstWire
	})
}
