// Package par provides the repo's two parallel-iteration primitives.
//
// ForEachIndex is the error-propagating, context-aware fan-out the
// experiment suites run across dies. Do is the lighter primitive the
// single-die hot path (cone construction, sharing-graph edge sweeps) uses:
// no context, no errors, and a stable worker id so call sites can keep
// per-worker scratch buffers.
//
// Both primitives make the same determinism promise: work items are
// identified by index, so callers that write results to disjoint,
// index-addressed slots get schedule-independent output.
package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values <= 0 mean "use all
// cores" (GOMAXPROCS), and the result never exceeds n, the number of work
// items.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Do runs fn(worker, i) for every i in [0, n) across a bounded pool of
// `workers` goroutines (<= 0 means GOMAXPROCS). The worker argument is a
// stable id in [0, workers) identifying the goroutine running the item, so
// fn may index per-worker scratch state without locking. Items are handed
// out dynamically (an atomic counter), which balances load when item costs
// are skewed; with workers == 1 everything runs inline on the caller's
// goroutine in index order.
//
// Do returns only after every item completes. fn must not panic.
func Do(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}

// ForEachIndex runs fn(ctx, i) for i in [0, n) across a bounded worker pool
// and returns the first error (by index order, so failures are
// deterministic). The experiment suites are embarrassingly parallel across
// dies: each die owns its netlist, placement and timing, and rows are
// written to disjoint indices.
//
// The first failure — or cancellation of ctx — aborts the remaining queued
// work: items not yet handed to a worker are skipped instead of running the
// suite to completion. Items already in flight see the cancellation through
// the context passed to fn and may bail early themselves; their
// context.Canceled returns never shadow the root-cause error of a later
// index.
func ForEachIndex(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	call := func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("par: worker panic on item %d: %v", i, r)
			}
		}()
		return fn(inner, i)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := inner.Err(); err != nil {
				return err
			}
			if err := call(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// A dispatched item always runs (its error wins over any
				// later-index failure); only undispatched work is skipped.
				if err := call(i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-inner.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// First error by index — but an fn that observed our own abort and
	// returned the context error must not shadow the real failure that
	// triggered it at a later index.
	var ctxErr error
	for _, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctxErr == nil {
				ctxErr = err
			}
		default:
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return ctxErr
}
