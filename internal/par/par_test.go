package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

type errIndexed int

func (e errIndexed) Error() string { return "item " + string(rune('0'+int(e))) }

func TestForEachIndexErrorAndPanic(t *testing.T) {
	// Errors surface deterministically by index order.
	err := ForEachIndex(context.Background(), 8, func(_ context.Context, i int) error {
		if i == 3 || i == 6 {
			return errIndexed(i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 3" {
		t.Errorf("err = %v, want item 3", err)
	}
	// Panics become errors instead of killing the process.
	err = ForEachIndex(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 2 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Error("worker panic must surface as an error")
	}
}

func TestForEachIndexRunsAll(t *testing.T) {
	hit := make([]bool, 37)
	if err := ForEachIndex(context.Background(), len(hit), func(_ context.Context, i int) error {
		hit[i] = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d skipped", i)
		}
	}
}

func TestForEachIndexDeterministicUnderConcurrentFailures(t *testing.T) {
	// Many rounds, many simultaneous failures: the reported error must be
	// the lowest-index one every time, regardless of completion order.
	for round := 0; round < 50; round++ {
		err := ForEachIndex(context.Background(), 16, func(_ context.Context, i int) error {
			if i >= 2 {
				return errIndexed(i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 2" {
			t.Fatalf("round %d: err = %v, want item 2", round, err)
		}
	}
}

func TestForEachIndexErrorAbortsQueuedWork(t *testing.T) {
	// Force the serial path so the abort point is exact: after the failure
	// at index 10, no further item may run.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	var ran atomic.Int64
	err := ForEachIndex(context.Background(), 100, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 10 {
			return errIndexed(0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got != 11 {
		t.Errorf("ran %d items, want 11 (failure must abort queued work)", got)
	}
}

func TestForEachIndexParentCancellation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForEachIndex(ctx, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 6 {
		t.Errorf("ran %d items, want 6 (cancellation must abort queued work)", got)
	}
	// A context cancelled before the call runs nothing at all.
	ran.Store(0)
	err = ForEachIndex(ctx, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) || ran.Load() != 0 {
		t.Errorf("pre-cancelled ctx: err = %v, ran = %d; want Canceled, 0", err, ran.Load())
	}
}

func TestForEachIndexCancellationDoesNotShadowRootCause(t *testing.T) {
	// Workers that observe the internal abort and return the context error
	// sit at LOWER indices than the real failure; the real failure must
	// still be the one reported.
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("needs >= 2 workers")
	}
	n := runtime.GOMAXPROCS(0)
	err := ForEachIndex(context.Background(), n, func(ctx context.Context, i int) error {
		if i == n-1 {
			return errors.New("root cause")
		}
		<-ctx.Done() // park until the abort fans out
		return ctx.Err()
	})
	if err == nil || err.Error() != "root cause" {
		t.Errorf("err = %v, want root cause", err)
	}
}
