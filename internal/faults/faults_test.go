package faults

import (
	"strings"
	"testing"

	"wcm3d/internal/netlist"
)

func mk(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString("f", src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCollapsedListSingleFanout(t *testing.T) {
	// a -> NOT -> z. Single-fanout everywhere: only output faults.
	n := mk(t, "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	list := CollapsedList(n)
	// 2 signals x 2 output faults = 4; no pin faults.
	if len(list) != 4 {
		t.Fatalf("collapsed list = %d faults, want 4: %v", len(list), list)
	}
	for _, f := range list {
		if f.Pin != OutputPin {
			t.Errorf("unexpected pin fault %v on single-fanout circuit", f)
		}
	}
}

func TestCollapsedListBranchFaults(t *testing.T) {
	// a fans out to an AND and an OR: branch pin faults appear, and only
	// the non-controlling polarity for AND/OR.
	n := mk(t, `
INPUT(a)
INPUT(b)
x = AND(a, b)
y = OR(a, b)
OUTPUT(x)
OUTPUT(y)
`)
	list := CollapsedList(n)
	aID, _ := n.SignalByName("a")
	bID, _ := n.SignalByName("b")
	xID, _ := n.SignalByName("x")
	yID, _ := n.SignalByName("y")
	var andPin, orPin []Fault
	for _, f := range list {
		if f.Pin == OutputPin {
			continue
		}
		switch f.Gate {
		case xID:
			andPin = append(andPin, f)
		case yID:
			orPin = append(orPin, f)
		}
	}
	// Both a and b are multi-fanout (a: AND+OR, b: AND+OR), so both pins
	// of each gate contribute exactly one fault: s-a-1 on AND pins,
	// s-a-0 on OR pins.
	if len(andPin) != 2 {
		t.Fatalf("AND pin faults = %v, want 2", andPin)
	}
	for _, f := range andPin {
		if f.StuckAt != 1 {
			t.Errorf("AND pin fault %v: want s-a-1 only (s-a-0 is output-equivalent)", f)
		}
	}
	if len(orPin) != 2 {
		t.Fatalf("OR pin faults = %v, want 2", orPin)
	}
	for _, f := range orPin {
		if f.StuckAt != 0 {
			t.Errorf("OR pin fault %v: want s-a-0 only", f)
		}
	}
	_ = aID
	_ = bID
}

func TestCollapsedListXorKeepsBoth(t *testing.T) {
	n := mk(t, `
INPUT(a)
INPUT(b)
x = XOR(a, b)
y = AND(a, b)
OUTPUT(x)
OUTPUT(y)
`)
	xID, _ := n.SignalByName("x")
	cnt := 0
	for _, f := range CollapsedList(n) {
		if f.Gate == xID && f.Pin != OutputPin {
			cnt++
		}
	}
	if cnt != 4 {
		t.Errorf("XOR pin faults = %d, want 4 (both polarities, both pins)", cnt)
	}
}

func TestCollapsedListInverterNoPinFaults(t *testing.T) {
	n := mk(t, `
INPUT(a)
x = NOT(a)
y = NOT(a)
OUTPUT(x)
OUTPUT(y)
`)
	for _, f := range CollapsedList(n) {
		if f.Pin != OutputPin {
			t.Errorf("inverter contributed pin fault %v", f)
		}
	}
}

func TestFaultStrings(t *testing.T) {
	n := mk(t, "INPUT(a)\nINPUT(b)\nz1 = AND(a, b)\nz2 = OR(a, b)\nOUTPUT(z1)\nOUTPUT(z2)\n")
	z, _ := n.SignalByName("z1")
	f := Fault{Gate: z, Pin: OutputPin, StuckAt: 1}
	if !strings.Contains(f.Describe(n), "z1/out s-a-1") {
		t.Errorf("Describe = %q", f.Describe(n))
	}
	f2 := Fault{Gate: z, Pin: 0, StuckAt: 1}
	if !strings.Contains(f2.Describe(n), "(a)") {
		t.Errorf("Describe = %q", f2.Describe(n))
	}
	if !strings.Contains(f.String(), "s-a-1") {
		t.Errorf("String = %q", f.String())
	}
}

func TestTransitionEquivalent(t *testing.T) {
	str := TransitionFault{Gate: 3, SlowToRise: true}
	eq := str.Equivalent()
	if eq.StuckAt != 0 || eq.Pin != OutputPin || eq.Gate != 3 {
		t.Errorf("slow-to-rise should map to s-a-0: %v", eq)
	}
	if str.InitialValue() != 0 {
		t.Error("slow-to-rise initial value must be 0")
	}
	stf := TransitionFault{Gate: 3, SlowToRise: false}
	if stf.Equivalent().StuckAt != 1 || stf.InitialValue() != 1 {
		t.Error("slow-to-fall must map to s-a-1 with initial 1")
	}
	if stf.String() != "#3 STF" || str.String() != "#3 STR" {
		t.Errorf("String: %q %q", stf, str)
	}
}

func TestTransitionListSize(t *testing.T) {
	n := mk(t, "INPUT(a)\nz = NOT(a)\nOUTPUT(z)\n")
	if got := len(TransitionList(n)); got != 4 {
		t.Errorf("transition list = %d, want 4", got)
	}
}

func TestCollapsedListDeterministicAndComplete(t *testing.T) {
	// The universe is a pure function of the netlist, and every gate
	// output contributes exactly two faults.
	n := mk(t, `
INPUT(a)
INPUT(b)
INPUT(c)
x = AND(a, b)
y = OR(x, c)
z = XOR(x, y)
q = DFF(z)
OUTPUT(o) = z
`)
	l1 := CollapsedList(n)
	l2 := CollapsedList(n)
	if len(l1) != len(l2) {
		t.Fatal("non-deterministic universe size")
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatal("non-deterministic universe order")
		}
	}
	outFaults := 0
	for _, f := range l1 {
		if f.Pin == OutputPin {
			outFaults++
		}
	}
	if outFaults != 2*n.NumGates() {
		t.Errorf("output faults = %d, want %d", outFaults, 2*n.NumGates())
	}
}

func TestCollapsedListDFFBranchFaults(t *testing.T) {
	// A multi-fanout net feeding a DFF D pin: the net's branch into the
	// D pin contributes no extra pin faults (the D pin is treated like a
	// buffer input), but branches into XOR gates do.
	n := mk(t, `
INPUT(a)
INPUT(b)
x = AND(a, b)
q = DFF(x)
y = XOR(x, b)
OUTPUT(o) = y
OUTPUT(p) = q
`)
	xID, _ := n.SignalByName("x")
	yID, _ := n.SignalByName("y")
	qID, _ := n.SignalByName("q")
	for _, f := range CollapsedList(n) {
		if f.Pin == OutputPin {
			continue
		}
		switch f.Gate {
		case yID:
			// expected: x and b are both multi-fanout
		case qID:
			t.Errorf("unexpected DFF pin fault %v", f)
		case xID:
			// a, b feed x; b is multi-fanout so a pin fault is fine
		}
	}
}
