// Package faults defines the structural fault models the testability side
// of the reproduction is built on: single stuck-at faults (with classic
// equivalence collapsing) and transition-delay faults under the
// enhanced-scan two-pattern assumption.
//
// The fault universe is always enumerated on the *functional* netlist, so
// that fault-coverage numbers from differently-wrapped variants of the same
// die share a denominator — exactly how the paper compares methods.
package faults

import (
	"fmt"

	"wcm3d/internal/netlist"
)

// OutputPin marks a fault on a gate's output rather than an input pin.
const OutputPin = -1

// Fault is a single stuck-at fault site.
type Fault struct {
	// Gate is the gate the fault is attached to.
	Gate netlist.SignalID
	// Pin is the input-pin index, or OutputPin for the gate output.
	Pin int16
	// StuckAt is the stuck value (0 or 1).
	StuckAt uint8
}

// String renders e.g. "g42/out s-a-1" or "g42/in2 s-a-0".
func (f Fault) String() string {
	if f.Pin == OutputPin {
		return fmt.Sprintf("#%d/out s-a-%d", f.Gate, f.StuckAt)
	}
	return fmt.Sprintf("#%d/in%d s-a-%d", f.Gate, f.Pin, f.StuckAt)
}

// Describe renders the fault with signal names from the netlist.
func (f Fault) Describe(n *netlist.Netlist) string {
	if f.Pin == OutputPin {
		return fmt.Sprintf("%s/out s-a-%d", n.NameOf(f.Gate), f.StuckAt)
	}
	src := n.Gate(f.Gate).Fanin[f.Pin]
	return fmt.Sprintf("%s/in%d(%s) s-a-%d", n.NameOf(f.Gate), f.Pin, n.NameOf(src), f.StuckAt)
}

// controllingValue returns (value, ok): the input value that forces the
// gate's output regardless of other inputs, for gate types that have one.
func controllingValue(t netlist.GateType) (uint8, bool) {
	switch t {
	case netlist.GateAnd, netlist.GateNand:
		return 0, true
	case netlist.GateOr, netlist.GateNor:
		return 1, true
	default:
		return 0, false
	}
}

// CollapsedList enumerates the equivalence-collapsed single stuck-at fault
// list of a netlist:
//
//   - both output faults on every signal that drives something observable
//     (gates, flip-flop outputs, TSV pads, primary inputs);
//   - input-pin faults only on pins fed by multi-fanout nets (single-fanout
//     pin faults are wire-equivalent to the driver's output faults), and
//     only the non-controlling pin fault for AND/NAND/OR/NOR (the
//     controlling one is equivalent to an output fault of the same gate);
//     inverters and buffers contribute no pin faults at all.
//
// The DFF D pin is treated like a buffer input (no extra pin faults).
func CollapsedList(n *netlist.Netlist) []Fault {
	fanouts := n.Fanouts()
	var list []Fault
	for i := range n.Gates {
		id := netlist.SignalID(i)
		// Output faults on every signal.
		list = append(list,
			Fault{Gate: id, Pin: OutputPin, StuckAt: 0},
			Fault{Gate: id, Pin: OutputPin, StuckAt: 1},
		)
		g := n.Gate(id)
		if !g.Type.IsCombinational() {
			continue
		}
		for pin, src := range g.Fanin {
			if n.FanoutCount(src) <= 1 && len(fanouts[src]) <= 1 {
				continue // wire-equivalent to the driver's output fault
			}
			switch g.Type {
			case netlist.GateBuf, netlist.GateNot:
				continue // pin faults equivalent to output faults
			case netlist.GateAnd, netlist.GateNand, netlist.GateOr, netlist.GateNor:
				cv, _ := controllingValue(g.Type)
				// s-a-controlling is equivalent to an output fault;
				// keep only s-a-non-controlling.
				list = append(list, Fault{Gate: id, Pin: int16(pin), StuckAt: 1 - cv})
			default:
				// XOR/XNOR/MUX have no controlling value: keep both.
				list = append(list,
					Fault{Gate: id, Pin: int16(pin), StuckAt: 0},
					Fault{Gate: id, Pin: int16(pin), StuckAt: 1},
				)
			}
		}
	}
	return list
}

// TransitionFault is a transition-delay fault: the signal is slow to make
// the given transition. Under the enhanced-scan assumption it is detected
// by a vector pair (V1, V2) where V1 establishes the initial value and V2
// is a stuck-at test for the final value being stuck at the initial one.
type TransitionFault struct {
	// Gate is the signal that transitions slowly.
	Gate netlist.SignalID
	// SlowToRise is true for a slow 0→1 transition, false for slow 1→0.
	SlowToRise bool
}

// String renders e.g. "#42 STR".
func (f TransitionFault) String() string {
	if f.SlowToRise {
		return fmt.Sprintf("#%d STR", f.Gate)
	}
	return fmt.Sprintf("#%d STF", f.Gate)
}

// Equivalent returns the stuck-at fault whose detection by V2 detects this
// transition fault (given V1 sets the opposite value): a slow-to-rise
// signal looks stuck at 0 on the final vector.
func (f TransitionFault) Equivalent() Fault {
	sa := uint8(1)
	if f.SlowToRise {
		sa = 0
	}
	return Fault{Gate: f.Gate, Pin: OutputPin, StuckAt: sa}
}

// InitialValue returns the value V1 must establish at the fault site.
func (f TransitionFault) InitialValue() uint8 {
	if f.SlowToRise {
		return 0
	}
	return 1
}

// TransitionList enumerates both transition faults on every signal output.
func TransitionList(n *netlist.Netlist) []TransitionFault {
	list := make([]TransitionFault, 0, 2*n.NumGates())
	for i := range n.Gates {
		id := netlist.SignalID(i)
		list = append(list,
			TransitionFault{Gate: id, SlowToRise: true},
			TransitionFault{Gate: id, SlowToRise: false},
		)
	}
	return list
}
