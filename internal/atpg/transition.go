package atpg

import (
	"fmt"
	"math/rand"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

// PatternPair is a two-vector transition test: V1 launches the initial
// value, V2 captures the (possibly slow) final value. Under enhanced scan
// both vectors are applied through the scan chain independently.
type PatternPair struct {
	V1, V2 faultsim.Pattern
}

// TransitionResult is the outcome of transition-fault pattern generation.
type TransitionResult struct {
	// Pairs is the final set of two-vector tests.
	Pairs []PatternPair
	// TotalFaults, Detected, Untestable and Aborted partition the list.
	TotalFaults int
	Detected    int
	Untestable  int
	Aborted     int
}

// Coverage is the raw transition-fault coverage: detected / total.
func (r *TransitionResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// TestCoverage excludes proven-untestable transition faults from the
// denominator, mirroring commercial tools.
func (r *TransitionResult) TestCoverage() float64 {
	den := r.TotalFaults - r.Untestable
	if den <= 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// PatternCount counts applied vectors: two per pair, matching how
// commercial flows report transition pattern counts.
func (r *TransitionResult) PatternCount() int { return 2 * len(r.Pairs) }

// RunTransition generates a transition-delay test set.
func RunTransition(n *netlist.Netlist, list []faults.TransitionFault, opts Options) (*TransitionResult, error) {
	opts = opts.withDefaults()
	sim := faultsim.New(n)
	if sim.NumSources() == 0 {
		return nil, fmt.Errorf("atpg: die %q has no controllable sources", n.Name)
	}
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x7472616e73)) // decorrelate from stuck-at phase
	res := &TransitionResult{TotalFaults: len(list)}

	detected := make([]bool, len(list))
	eng := sim.NewEngine()
	var pairs []PatternPair

	detectWord := func(f faults.TransitionFault, g1, g2 *faultsim.Block) uint64 {
		// Pattern k detects the fault when V1[k] proves the initial
		// value at the site and V2[k] detects the equivalent stuck-at.
		site := f.Gate
		det2 := eng.Detects(f.Equivalent(), g2)
		if det2 == 0 {
			return 0
		}
		var initMask uint64
		for k := 0; k < g1.NPat; k++ {
			v, known := g1.Val(site, k)
			if known && v == (f.InitialValue() == 1) {
				initMask |= 1 << uint(k)
			}
		}
		return det2 & initMask
	}

	// Phase 1: random pairs with dropping.
	for blk := 0; blk < opts.MaxRandomBlocks; blk++ {
		b1 := make([]faultsim.Pattern, 64)
		b2 := make([]faultsim.Pattern, 64)
		for i := range b1 {
			b1[i] = sim.RandomPattern(rng)
			b2[i] = sim.RandomPattern(rng)
		}
		g1, err := sim.GoodSim(b1)
		if err != nil {
			return nil, err
		}
		g2, err := sim.GoodSim(b2)
		if err != nil {
			return nil, err
		}
		newDetects := 0
		useful := make([]bool, 64)
		for fi := range list {
			if detected[fi] {
				continue
			}
			det := detectWord(list[fi], g1, g2)
			if det == 0 {
				continue
			}
			useful[firstBit(det)] = true
			detected[fi] = true
			newDetects++
		}
		for i, u := range useful {
			if u {
				pairs = append(pairs, PatternPair{V1: b1[i], V2: b2[i]})
			}
		}
		if newDetects < opts.MinNewDetects {
			break
		}
	}

	// Phase 2: deterministic. V2 via PODEM on the equivalent stuck-at
	// fault, V1 via justification of the initial value.
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, opts.MaxBacktracks)
	var pendV1, pendV2 []faultsim.Pattern
	flush := func() error {
		if len(pendV1) == 0 {
			return nil
		}
		g1, err := sim.GoodSim(pendV1)
		if err != nil {
			return err
		}
		g2, err := sim.GoodSim(pendV2)
		if err != nil {
			return err
		}
		for fi := range list {
			if detected[fi] {
				continue
			}
			if detectWord(list[fi], g1, g2) != 0 {
				detected[fi] = true
			}
		}
		for i := range pendV1 {
			pairs = append(pairs, PatternPair{V1: pendV1[i], V2: pendV2[i]})
		}
		pendV1, pendV2 = pendV1[:0], pendV2[:0]
		return nil
	}
	targeted := 0
	for fi := range list {
		if detected[fi] {
			continue
		}
		if opts.MaxDeterministic > 0 && targeted >= opts.MaxDeterministic {
			break
		}
		targeted++
		f := list[fi]
		v2, out2 := pd.generate(f.Equivalent(), rng)
		if out2 != genFound {
			if out2 == genAborted {
				res.Aborted++
			} else {
				res.Untestable++
			}
			continue
		}
		v1, out1 := pd.justifyVector(f.Gate, FromBool(f.InitialValue() == 1), rng)
		if out1 != genFound {
			if out1 == genAborted {
				res.Aborted++
			} else {
				res.Untestable++
			}
			continue
		}
		detected[fi] = true
		pendV1 = append(pendV1, v1)
		pendV2 = append(pendV2, v2)
		if len(pendV1) == 64 {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}

	// Phase 3: reverse-order pair compaction with independent
	// re-verification.
	if !opts.DisableCompaction && len(pairs) > 1 {
		for i, j := 0, len(pairs)-1; i < j; i, j = i+1, j-1 {
			pairs[i], pairs[j] = pairs[j], pairs[i]
		}
		redetected := make([]bool, len(list))
		numDet := 0
		var kept []PatternPair
		for base := 0; base < len(pairs); base += 64 {
			end := base + 64
			if end > len(pairs) {
				end = len(pairs)
			}
			b1 := make([]faultsim.Pattern, 0, end-base)
			b2 := make([]faultsim.Pattern, 0, end-base)
			for _, pr := range pairs[base:end] {
				b1 = append(b1, pr.V1)
				b2 = append(b2, pr.V2)
			}
			g1, err := sim.GoodSim(b1)
			if err != nil {
				return nil, err
			}
			g2, err := sim.GoodSim(b2)
			if err != nil {
				return nil, err
			}
			useful := make([]bool, end-base)
			for fi := range list {
				if redetected[fi] {
					continue
				}
				det := detectWord(list[fi], g1, g2)
				if det == 0 {
					continue
				}
				useful[firstBit(det)] = true
				redetected[fi] = true
				numDet++
			}
			for i, u := range useful {
				if u {
					kept = append(kept, pairs[base+i])
				}
			}
		}
		if len(kept) > 0 {
			pairs = kept
		}
		res.Detected = numDet
	} else {
		for _, d := range detected {
			if d {
				res.Detected++
			}
		}
	}
	res.Pairs = pairs
	return res, nil
}
