package atpg

import (
	"math/rand"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

// podem is the per-fault search state. It is reused across faults (Reset)
// so allocations amortize.
type podem struct {
	n       *netlist.Netlist
	sim     *faultsim.Simulator
	sc      *scoap
	fanouts [][]netlist.SignalID
	level   []int32

	gv, fv []V // good / faulty three-valued state
	trail  []trailEntry

	// diffList holds signals that at some point carried a fault effect
	// (D or D'); entries may be stale and are validated on read.
	diffList []netlist.SignalID
	// nObsDiffs counts observation points currently carrying a valid
	// fault effect; > 0 means the fault is detected.
	nObsDiffs int

	buckets  [][]netlist.SignalID
	inQueue  []uint32
	epoch    uint32
	maxLevel int

	fault      faults.Fault
	faultPin   int // fault.Pin as int, or -1
	maxBT      int
	backtracks int
	aborted    bool

	// justify mode: succeed by driving justifySig to justifyVal instead
	// of propagating a fault effect. Used for DFF D-pin branch faults
	// (observed directly at capture) and for transition-fault V1
	// vectors.
	justifyMode bool
	justifySig  netlist.SignalID
	justifyVal  V
}

type trailEntry struct {
	sig  netlist.SignalID
	g, f V
}

func newPodem(n *netlist.Netlist, sim *faultsim.Simulator, sc *scoap, maxBacktracks int) *podem {
	ng := n.NumGates()
	maxLvl := n.MaxLevel()
	return &podem{
		n:        n,
		sim:      sim,
		sc:       sc,
		fanouts:  n.Fanouts(),
		level:    levelsOf(n),
		gv:       make([]V, ng),
		fv:       make([]V, ng),
		buckets:  make([][]netlist.SignalID, maxLvl+1),
		inQueue:  make([]uint32, ng),
		epoch:    1,
		maxLevel: maxLvl,
		maxBT:    maxBacktracks,
	}
}

func levelsOf(n *netlist.Netlist) []int32 {
	l := make([]int32, n.NumGates())
	for i := range l {
		l[i] = int32(n.Level(netlist.SignalID(i)))
	}
	return l
}

func (p *podem) controllable(sig netlist.SignalID) bool {
	_, ok := p.sim.SourceIndex(sig)
	return ok
}

// reset prepares the state for a new target fault: clears all values,
// injects the fault, and propagates constants.
func (p *podem) reset(f faults.Fault) {
	for i := range p.gv {
		p.gv[i] = VX
		p.fv[i] = VX
	}
	p.trail = p.trail[:0]
	p.diffList = p.diffList[:0]
	p.nObsDiffs = 0
	p.backtracks = 0
	p.aborted = false
	p.fault = f
	p.faultPin = int(f.Pin)
	p.justifyMode = false

	// Constants are known from the start.
	for i := range p.n.Gates {
		id := netlist.SignalID(i)
		switch p.n.TypeOf(id) {
		case netlist.GateConst0:
			p.setValue(id, V0, p.faultyOf(id, V0))
			p.enqueueFanouts(id)
		case netlist.GateConst1:
			p.setValue(id, V1, p.faultyOf(id, V1))
			p.enqueueFanouts(id)
		}
	}
	// Inject the fault so the faulty machine knows the stuck value even
	// before activation.
	stuck := FromBool(f.StuckAt == 1)
	if f.Pin == faults.OutputPin {
		p.setValue(f.Gate, p.gv[f.Gate], stuck)
		p.enqueueFanouts(f.Gate)
	} else {
		p.enqueue(f.Gate)
	}
	p.propagate()
}

// resetJustify prepares a pure justification problem: drive sig to v with
// no fault injected.
func (p *podem) resetJustify(sig netlist.SignalID, v V) {
	for i := range p.gv {
		p.gv[i] = VX
		p.fv[i] = VX
	}
	p.trail = p.trail[:0]
	p.diffList = p.diffList[:0]
	p.nObsDiffs = 0
	p.backtracks = 0
	p.aborted = false
	p.fault = faults.Fault{Gate: netlist.InvalidSignal, Pin: faults.OutputPin}
	p.faultPin = faults.OutputPin
	p.justifyMode = true
	p.justifySig = sig
	p.justifyVal = v
	for i := range p.n.Gates {
		id := netlist.SignalID(i)
		switch p.n.TypeOf(id) {
		case netlist.GateConst0:
			p.setValue(id, V0, V0)
			p.enqueueFanouts(id)
		case netlist.GateConst1:
			p.setValue(id, V1, V1)
			p.enqueueFanouts(id)
		}
	}
	p.propagate()
}

// success reports whether the current assignment achieves the goal.
func (p *podem) success() bool {
	if p.justifyMode {
		return p.gv[p.justifySig] == p.justifyVal
	}
	return p.nObsDiffs > 0
}

// faultyOf maps a good value at sig to the faulty-machine value, applying
// output-fault injection at the fault site.
func (p *podem) faultyOf(sig netlist.SignalID, good V) V {
	if sig == p.fault.Gate && p.faultPin == faults.OutputPin {
		return FromBool(p.fault.StuckAt == 1)
	}
	return good
}

// setValue records the old state on the trail and updates bookkeeping.
func (p *podem) setValue(sig netlist.SignalID, g, f V) {
	oldG, oldF := p.gv[sig], p.fv[sig]
	if oldG == g && oldF == f {
		return
	}
	p.trail = append(p.trail, trailEntry{sig, oldG, oldF})
	wasDiff := oldG != VX && oldF != VX && oldG != oldF
	isDiff := g != VX && f != VX && g != f
	p.gv[sig], p.fv[sig] = g, f
	if isDiff && !wasDiff {
		p.diffList = append(p.diffList, sig)
	}
	if p.sim.Observed(sig) {
		switch {
		case isDiff && !wasDiff:
			p.nObsDiffs++
		case wasDiff && !isDiff:
			p.nObsDiffs--
		}
	}
}

// undo rolls the trail back to a mark.
func (p *podem) undo(mark int) {
	for len(p.trail) > mark {
		e := p.trail[len(p.trail)-1]
		p.trail = p.trail[:len(p.trail)-1]
		curG, curF := p.gv[e.sig], p.fv[e.sig]
		wasDiff := curG != VX && curF != VX && curG != curF
		isDiff := e.g != VX && e.f != VX && e.g != e.f
		p.gv[e.sig], p.fv[e.sig] = e.g, e.f
		if p.sim.Observed(e.sig) {
			switch {
			case isDiff && !wasDiff:
				p.nObsDiffs++
			case wasDiff && !isDiff:
				p.nObsDiffs--
			}
		}
	}
}

func (p *podem) enqueue(sig netlist.SignalID) {
	if p.inQueue[sig] == p.epoch {
		return
	}
	p.inQueue[sig] = p.epoch
	p.buckets[p.level[sig]] = append(p.buckets[p.level[sig]], sig)
}

func (p *podem) enqueueFanouts(sig netlist.SignalID) {
	for _, fo := range p.fanouts[sig] {
		if p.n.TypeOf(fo) == netlist.GateDFF {
			continue // capture boundary
		}
		p.enqueue(fo)
	}
}

// propagate drains the event queue in level order, recomputing gate values.
func (p *podem) propagate() {
	for lvl := 0; lvl <= p.maxLevel; lvl++ {
		bucket := p.buckets[lvl]
		for bi := 0; bi < len(bucket); bi++ {
			id := bucket[bi]
			g := p.n.Gate(id)
			if !g.Type.IsCombinational() {
				continue
			}
			ng := evalGate3(g, func(pin int) V { return p.gv[g.Fanin[pin]] })
			var nf V
			if id == p.fault.Gate && p.faultPin != faults.OutputPin {
				stuck := FromBool(p.fault.StuckAt == 1)
				nf = evalGate3(g, func(pin int) V {
					if pin == p.faultPin {
						return stuck
					}
					return p.fv[g.Fanin[pin]]
				})
			} else {
				nf = evalGate3(g, func(pin int) V { return p.fv[g.Fanin[pin]] })
				nf = p.faultyOf(id, nf)
			}
			ng2 := p.faultyGoodOf(id, ng)
			if ng2 != p.gv[id] || nf != p.fv[id] {
				p.setValue(id, ng2, nf)
				p.enqueueFanouts(id)
			}
		}
		p.buckets[lvl] = bucket[:0]
	}
	p.epoch++
}

// faultyGoodOf is the identity — the good machine never sees the fault —
// but kept as a named hook to make the injection asymmetry explicit.
func (p *podem) faultyGoodOf(_ netlist.SignalID, g V) V { return g }

// assign sets a controllable source and propagates.
func (p *podem) assign(src netlist.SignalID, v V) {
	p.setValue(src, v, p.faultyOf(src, v))
	p.enqueueFanouts(src)
	p.propagate()
}

// activationLine returns the signal whose good value must be set opposite
// to the stuck value for the fault to produce an effect.
func (p *podem) activationLine() netlist.SignalID {
	if p.faultPin == faults.OutputPin {
		return p.fault.Gate
	}
	return p.n.Gate(p.fault.Gate).Fanin[p.faultPin]
}

// objective returns the next (signal, value) goal, or ok=false when the
// current branch cannot succeed.
func (p *podem) objective() (netlist.SignalID, V, bool) {
	if p.justifyMode {
		switch p.gv[p.justifySig] {
		case VX:
			return p.justifySig, p.justifyVal, true
		case p.justifyVal:
			return 0, VX, false // success() already handled upstream
		default:
			return 0, VX, false // contradicted
		}
	}
	want := FromBool(p.fault.StuckAt == 1).Neg()
	line := p.activationLine()
	switch p.gv[line] {
	case VX:
		return line, want, true
	case want.Neg():
		return 0, VX, false // activation impossible on this branch
	}
	// Activated: drive a D-frontier gate's side inputs non-controlling.
	// For a pin fault whose effect has not yet crossed its own gate, the
	// site gate itself is the (only) frontier.
	type cand struct {
		sig netlist.SignalID
		v   V
	}
	var best *cand
	bestCost := infCost
	liveEffect := false
	consider := func(fo netlist.SignalID) {
		g := p.n.Gate(fo)
		if !g.Type.IsCombinational() {
			return
		}
		if p.gv[fo] != VX && p.fv[fo] != VX {
			return // output already resolved; not frontier
		}
		if !p.sc.reachObs[fo] {
			return
		}
		hasEffect := func(pin int) bool {
			if fo == p.fault.Gate && pin == p.faultPin {
				return true // activated pin fault: the effect sits on the pin
			}
			return p.isDiff(g.Fanin[pin])
		}
		sig, v, ok := p.frontierGoal(g, hasEffect)
		if !ok {
			return
		}
		cost := p.sc.cost(sig, v)
		if cost < bestCost {
			bestCost = cost
			best = &cand{sig, v}
		}
	}
	for _, d := range p.diffList {
		if p.gv[d] == VX || p.fv[d] == VX || p.gv[d] == p.fv[d] {
			continue
		}
		if p.sc.reachObs[d] {
			liveEffect = true
		}
		for _, fo := range p.fanouts[d] {
			consider(fo)
		}
	}
	if p.faultPin != faults.OutputPin &&
		(p.gv[p.fault.Gate] == VX || p.fv[p.fault.Gate] == VX) {
		// Effect sits on the faulted pin, upstream of the site gate.
		if p.sc.reachObs[p.fault.Gate] {
			liveEffect = true
		}
		consider(p.fault.Gate)
	}
	if !liveEffect || best == nil {
		return 0, VX, false
	}
	return best.sig, best.v, true
}

// frontierGoal picks the side-input objective that lets a fault effect pass
// through frontier gate g. hasEffect reports which input pins carry the
// effect (a diff signal, or the faulted pin itself).
func (p *podem) frontierGoal(g *netlist.Gate, hasEffect func(int) bool) (netlist.SignalID, V, bool) {
	if g.Type == netlist.GateMux2 {
		sel := g.Fanin[0]
		switch {
		case hasEffect(0):
			// Effect on the select: the two data inputs must differ.
			for _, pin := range [2]int{1, 2} {
				if p.gv[g.Fanin[pin]] == VX && !hasEffect(pin) {
					other := p.gv[g.Fanin[3-pin]]
					v := V1
					if other == V1 {
						v = V0
					}
					return g.Fanin[pin], v, true
				}
			}
			return 0, VX, false
		case hasEffect(1):
			if p.gv[sel] == VX {
				return sel, V0, true // steer the select toward input a
			}
			return 0, VX, false
		case hasEffect(2):
			if p.gv[sel] == VX {
				return sel, V1, true // steer the select toward input b
			}
			return 0, VX, false
		default:
			return 0, VX, false
		}
	}
	var v V
	switch g.Type {
	case netlist.GateAnd, netlist.GateNand:
		v = V1
	case netlist.GateOr, netlist.GateNor:
		v = V0
	case netlist.GateXor, netlist.GateXnor:
		v = V0
	default:
		return 0, VX, false // BUF/NOT propagate effects without help
	}
	for pin, src := range g.Fanin {
		if p.gv[src] == VX && !hasEffect(pin) {
			return src, v, true
		}
	}
	return 0, VX, false
}

func (p *podem) isDiff(sig netlist.SignalID) bool {
	return p.gv[sig] != VX && p.fv[sig] != VX && p.gv[sig] != p.fv[sig]
}

// backtrace walks an objective back to an unassigned controllable source.
func (p *podem) backtrace(sig netlist.SignalID, v V) (netlist.SignalID, V, bool) {
	for steps := 0; steps < p.n.NumGates()+1; steps++ {
		if p.controllable(sig) {
			if p.gv[sig] != VX {
				return 0, VX, false // already assigned: dead end
			}
			return sig, v, true
		}
		g := p.n.Gate(sig)
		switch g.Type {
		case netlist.GateBuf:
			sig = g.Fanin[0]
		case netlist.GateNot:
			sig, v = g.Fanin[0], v.Neg()
		case netlist.GateAnd, netlist.GateNand, netlist.GateOr, netlist.GateNor:
			av := v
			if g.Type == netlist.GateNand || g.Type == netlist.GateNor {
				av = v.Neg()
			}
			// In the AND domain: output 1 needs all inputs 1 (pick the
			// hardest X input); output 0 needs one input 0 (pick the
			// easiest). OR domain is the dual.
			need := V1
			all := av == V1
			if g.Type == netlist.GateOr || g.Type == netlist.GateNor {
				need = V0
				all = av == V0
			}
			want := need
			if !all {
				want = need.Neg()
			}
			next := netlist.InvalidSignal
			var bestCost int32
			for _, src := range g.Fanin {
				if p.gv[src] != VX {
					continue
				}
				c := p.sc.cost(src, want)
				if next == netlist.InvalidSignal ||
					(all && c > bestCost) || (!all && c < bestCost) {
					next, bestCost = src, c
				}
			}
			if next == netlist.InvalidSignal {
				return 0, VX, false
			}
			sig, v = next, want
		case netlist.GateXor, netlist.GateXnor:
			target := v
			if g.Type == netlist.GateXnor {
				target = v.Neg()
			}
			// parity of known inputs; first X input becomes the goal.
			next := netlist.InvalidSignal
			parity := V0
			for _, src := range g.Fanin {
				switch p.gv[src] {
				case V1:
					parity = parity.Neg()
				case VX:
					if next == netlist.InvalidSignal {
						next = src
					}
				}
			}
			if next == netlist.InvalidSignal {
				return 0, VX, false
			}
			want := target
			if parity == V1 {
				want = target.Neg()
			}
			sig, v = next, want
		case netlist.GateMux2:
			sel := g.Fanin[0]
			switch p.gv[sel] {
			case V0:
				sig = g.Fanin[1]
			case V1:
				sig = g.Fanin[2]
			default:
				// Choose the cheaper select branch for the target value.
				c0 := addSat(p.sc.cost(sel, V0), p.sc.cost(g.Fanin[1], v))
				c1 := addSat(p.sc.cost(sel, V1), p.sc.cost(g.Fanin[2], v))
				if c0 <= c1 {
					sig, v = sel, V0
				} else {
					sig, v = sel, V1
				}
			}
		default:
			// TSV pads, constants: uncontrollable.
			return 0, VX, false
		}
	}
	return 0, VX, false
}

// search runs the recursive PODEM decision loop. Returns true when the
// fault effect reaches an observation point.
func (p *podem) search() bool {
	if p.success() {
		return true
	}
	if p.aborted {
		return false
	}
	sig, v, ok := p.objective()
	if !ok {
		return false
	}
	src, want, ok := p.backtrace(sig, v)
	if !ok {
		return false
	}
	for _, tryV := range [2]V{want, want.Neg()} {
		mark := len(p.trail)
		p.assign(src, tryV)
		if p.search() {
			return true
		}
		p.undo(mark)
		p.backtracks++
		if p.backtracks > p.maxBT {
			p.aborted = true
			return false
		}
	}
	return false
}

// extractPattern reads the assigned sources into a test vector, filling
// unassigned sources randomly.
func (p *podem) extractPattern(rng *rand.Rand) faultsim.Pattern {
	pat := faultsim.NewPattern(p.sim.NumSources())
	for j, src := range p.sim.Sources {
		switch p.gv[src] {
		case V1:
			pat.Set(j, true)
		case V0:
			pat.Set(j, false)
		default:
			pat.Set(j, rng.Intn(2) == 1)
		}
	}
	return pat
}

// Generate attempts to build a test for one stuck-at fault.
// The outcome is one of: found (pattern valid), untestable (search space
// exhausted), aborted (backtrack budget hit).
type genOutcome uint8

const (
	genFound genOutcome = iota + 1
	genUntestable
	genAborted
)

func (p *podem) generate(f faults.Fault, rng *rand.Rand) (faultsim.Pattern, genOutcome) {
	if f.Pin != faults.OutputPin && p.n.TypeOf(f.Gate) == netlist.GateDFF {
		// A D-pin branch fault is observed directly at scan capture:
		// the test only needs to justify the opposite value on the
		// driver.
		d := p.n.Gate(f.Gate).Fanin[f.Pin]
		p.resetJustify(d, FromBool(f.StuckAt == 1).Neg())
		if p.search() {
			return p.extractPattern(rng), genFound
		}
		if p.aborted {
			return faultsim.Pattern{}, genAborted
		}
		return faultsim.Pattern{}, genUntestable
	}
	p.reset(f)
	// Structural screen: no path from the fault site to any observation
	// point means untestable regardless of values.
	if !p.structurallyObservable(f) {
		return faultsim.Pattern{}, genUntestable
	}
	if p.search() {
		return p.extractPattern(rng), genFound
	}
	if p.aborted {
		return faultsim.Pattern{}, genAborted
	}
	return faultsim.Pattern{}, genUntestable
}

// justifyVector builds a vector driving sig to v (used for transition
// fault V1 vectors).
func (p *podem) justifyVector(sig netlist.SignalID, v V, rng *rand.Rand) (faultsim.Pattern, genOutcome) {
	p.resetJustify(sig, v)
	if p.search() {
		return p.extractPattern(rng), genFound
	}
	if p.aborted {
		return faultsim.Pattern{}, genAborted
	}
	return faultsim.Pattern{}, genUntestable
}

func (p *podem) structurallyObservable(f faults.Fault) bool {
	if f.Pin != faults.OutputPin && p.n.TypeOf(f.Gate) == netlist.GateDFF {
		return true // D-pin branch faults are observed at capture
	}
	site := f.Gate
	if p.sim.Observed(site) {
		return true
	}
	return p.sc.reachObs[site]
}
