package atpg

import (
	"fmt"
	"math/rand"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netlist"
)

// Options tunes the pattern-generation flow. The zero value gets sensible
// defaults.
type Options struct {
	// Seed drives every random choice; equal seeds reproduce runs.
	Seed int64
	// MaxRandomBlocks bounds the random phase (64 patterns per block).
	// Default 32.
	MaxRandomBlocks int
	// MinNewDetects stops the random phase once a block detects fewer
	// new faults than this. Default 3.
	MinNewDetects int
	// MaxBacktracks is the PODEM budget per fault. Default 60.
	MaxBacktracks int
	// MaxDeterministic caps how many faults the PODEM phase targets
	// (0 = unlimited). Reduced-effort runs use it to bound worst-case
	// runtime on large dies; untargeted faults simply stay undetected.
	MaxDeterministic int
	// Compact enables reverse-order pattern compaction. Default on via
	// DisableCompaction.
	DisableCompaction bool
}

func (o Options) withDefaults() Options {
	if o.MaxRandomBlocks == 0 {
		o.MaxRandomBlocks = 32
	}
	if o.MinNewDetects == 0 {
		o.MinNewDetects = 3
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 60
	}
	return o
}

// Result is the outcome of a pattern-generation run.
type Result struct {
	// Patterns is the final (compacted) test set.
	Patterns []faultsim.Pattern
	// TotalFaults, Detected, Untestable and Aborted partition the fault
	// list (Detected + Untestable + Aborted + undetected-but-unproven =
	// TotalFaults).
	TotalFaults int
	Detected    int
	Untestable  int
	Aborted     int
	// RandomDetected counts faults the random phase caught.
	RandomDetected int
}

// Coverage is the raw fault coverage: detected / total.
func (r *Result) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// TestCoverage is detected / (total - proven untestable) — the metric
// commercial ATPG tools headline, and the one the paper's coverage tables
// correspond to (redundant faults are excluded from the denominator).
func (r *Result) TestCoverage() float64 {
	den := r.TotalFaults - r.Untestable
	if den <= 0 {
		return 1
	}
	return float64(r.Detected) / float64(den)
}

// PatternCount returns the number of test patterns in the final set.
func (r *Result) PatternCount() int { return len(r.Patterns) }

// Run generates a stuck-at test set for the fault list on the die.
func Run(n *netlist.Netlist, list []faults.Fault, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	sim := faultsim.New(n)
	if sim.NumSources() == 0 {
		return nil, fmt.Errorf("atpg: die %q has no controllable sources", n.Name)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	res := &Result{TotalFaults: len(list)}

	detected := make([]bool, len(list))
	eng := sim.NewEngine()
	var patterns []faultsim.Pattern

	// Phase 1: random patterns with fault dropping. Keep only patterns
	// that first-detect something.
	for blk := 0; blk < opts.MaxRandomBlocks; blk++ {
		block := make([]faultsim.Pattern, 64)
		for i := range block {
			block[i] = sim.RandomPattern(rng)
		}
		good, err := sim.GoodSim(block)
		if err != nil {
			return nil, err
		}
		newDetects := 0
		useful := make([]bool, 64)
		for fi := range list {
			if detected[fi] {
				continue
			}
			det := eng.Detects(list[fi], good)
			if det == 0 {
				continue
			}
			first := firstBit(det)
			useful[first] = true
			detected[fi] = true
			newDetects++
		}
		for i, u := range useful {
			if u {
				patterns = append(patterns, block[i])
			}
		}
		res.RandomDetected += newDetects
		if newDetects < opts.MinNewDetects {
			break
		}
	}

	// Phase 2: PODEM for the survivors, fault-simulating each new
	// pattern against the remaining faults.
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, opts.MaxBacktracks)
	var pending []faultsim.Pattern // generated but not yet cross-simulated
	flushPending := func() error {
		if len(pending) == 0 {
			return nil
		}
		good, err := sim.GoodSim(pending)
		if err != nil {
			return err
		}
		for fi := range list {
			if detected[fi] {
				continue
			}
			if eng.Detects(list[fi], good) != 0 {
				detected[fi] = true
			}
		}
		patterns = append(patterns, pending...)
		pending = pending[:0]
		return nil
	}
	targeted := 0
	for fi := range list {
		if detected[fi] {
			continue
		}
		if opts.MaxDeterministic > 0 && targeted >= opts.MaxDeterministic {
			break
		}
		targeted++
		pat, outcome := pd.generate(list[fi], rng)
		switch outcome {
		case genFound:
			detected[fi] = true
			pending = append(pending, pat)
			if len(pending) == 64 {
				if err := flushPending(); err != nil {
					return nil, err
				}
			}
		case genUntestable:
			res.Untestable++
		case genAborted:
			res.Aborted++
		}
	}
	if err := flushPending(); err != nil {
		return nil, err
	}

	for _, d := range detected {
		if d {
			res.Detected++
		}
	}

	// Phase 3: reverse-order compaction — late deterministic patterns
	// tend to cover the early random ones.
	if !opts.DisableCompaction && len(patterns) > 1 {
		reversed := make([]faultsim.Pattern, len(patterns))
		for i, p := range patterns {
			reversed[len(patterns)-1-i] = p
		}
		camp, err := sim.RunCampaign(reversed, list)
		if err != nil {
			return nil, err
		}
		var kept []faultsim.Pattern
		for i, u := range camp.UsefulPattern {
			if u {
				kept = append(kept, reversed[i])
			}
		}
		if len(kept) > 0 {
			patterns = kept
		}
		// The campaign independently verified detection of every fault
		// by the final pattern set; prefer it over PODEM's claims.
		res.Detected = camp.NumDetected
	}
	res.Patterns = patterns
	return res, nil
}

func firstBit(w uint64) int {
	for i := 0; i < 64; i++ {
		if w&(1<<uint(i)) != 0 {
			return i
		}
	}
	return -1
}

// EvaluatePatterns fault-simulates an existing pattern set against a fault
// list and returns the coverage — used to grade a wrapped die against the
// functional-die fault universe.
func EvaluatePatterns(n *netlist.Netlist, list []faults.Fault, patterns []faultsim.Pattern) (float64, error) {
	sim := faultsim.New(n)
	camp, err := sim.RunCampaign(patterns, list)
	if err != nil {
		return 0, err
	}
	return camp.Coverage(), nil
}
