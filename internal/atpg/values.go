// Package atpg implements deterministic test-pattern generation — the
// other half of the reproduction's stand-in for a commercial ATPG tool.
// The flow is the classic industrial one:
//
//  1. a random-pattern phase with bit-parallel fault simulation and fault
//     dropping (internal/faultsim) picks off the easy faults;
//  2. a PODEM (path-oriented decision making) phase targets each remaining
//     fault with SCOAP-guided backtrace, event-driven five-valued
//     implication, and a backtrack budget;
//  3. an optional reverse-order compaction pass re-simulates the pattern
//     set with dropping and discards patterns that detect nothing new.
//
// Transition-delay faults are handled under the enhanced-scan two-pattern
// assumption: V1 justifies the initial value at the fault site, V2 is a
// stuck-at test for the slow value (see internal/faults).
package atpg

import "wcm3d/internal/netlist"

// V is a three-valued logic value.
type V uint8

// Three-valued constants. VX must be the zero value: fresh assignment
// arrays start all-X.
const (
	VX V = iota // unknown / unassigned
	V0
	V1
)

// String renders "X", "0" or "1".
func (v V) String() string {
	switch v {
	case V0:
		return "0"
	case V1:
		return "1"
	default:
		return "X"
	}
}

// Neg returns the complement; X stays X.
func (v V) Neg() V {
	switch v {
	case V0:
		return V1
	case V1:
		return V0
	default:
		return VX
	}
}

// FromBool converts a concrete bit.
func FromBool(b bool) V {
	if b {
		return V1
	}
	return V0
}

// evalGate3 computes a gate's three-valued output, reading fanin values
// through fn(pin).
func evalGate3(g *netlist.Gate, fn func(int) V) V {
	switch g.Type {
	case netlist.GateBuf:
		return fn(0)
	case netlist.GateNot:
		return fn(0).Neg()
	case netlist.GateConst0:
		return V0
	case netlist.GateConst1:
		return V1
	case netlist.GateAnd, netlist.GateNand:
		out := V1
		for i := range g.Fanin {
			switch fn(i) {
			case V0:
				out = V0
			case VX:
				if out == V1 {
					out = VX
				}
			}
			if out == V0 {
				break
			}
		}
		if g.Type == netlist.GateNand {
			return out.Neg()
		}
		return out
	case netlist.GateOr, netlist.GateNor:
		out := V0
		for i := range g.Fanin {
			switch fn(i) {
			case V1:
				out = V1
			case VX:
				if out == V0 {
					out = VX
				}
			}
			if out == V1 {
				break
			}
		}
		if g.Type == netlist.GateNor {
			return out.Neg()
		}
		return out
	case netlist.GateXor, netlist.GateXnor:
		out := V0
		for i := range g.Fanin {
			in := fn(i)
			if in == VX {
				return VX
			}
			if in == V1 {
				out = out.Neg()
			}
		}
		if g.Type == netlist.GateXnor {
			return out.Neg()
		}
		return out
	case netlist.GateMux2:
		sel := fn(0)
		a, b := fn(1), fn(2)
		switch sel {
		case V0:
			return a
		case V1:
			return b
		default:
			if a != VX && a == b {
				return a
			}
			return VX
		}
	default:
		return VX
	}
}
