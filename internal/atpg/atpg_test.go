package atpg

import (
	"math/rand"
	"testing"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
)

func mk(t *testing.T, src string) *netlist.Netlist {
	t.Helper()
	n, err := netlist.ParseString("a", src)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestVBasics(t *testing.T) {
	if V0.Neg() != V1 || V1.Neg() != V0 || VX.Neg() != VX {
		t.Error("Neg wrong")
	}
	if FromBool(true) != V1 || FromBool(false) != V0 {
		t.Error("FromBool wrong")
	}
	if V0.String() != "0" || V1.String() != "1" || VX.String() != "X" {
		t.Error("String wrong")
	}
}

func TestEvalGate3TruthTables(t *testing.T) {
	n := mk(t, `
INPUT(a)
INPUT(b)
g_and = AND(a, b)
g_or = OR(a, b)
g_xor = XOR(a, b)
g_nand = NAND(a, b)
OUTPUT(g_and)
OUTPUT(g_or)
OUTPUT(g_xor)
OUTPUT(g_nand)
`)
	id := func(s string) *netlist.Gate { i, _ := n.SignalByName(s); return n.Gate(i) }
	cases := []struct {
		a, b                V
		and, or, xor, nand_ V
	}{
		{V0, V0, V0, V0, V0, V1},
		{V1, V1, V1, V1, V0, V0},
		{V0, VX, V0, VX, VX, V1}, // controlling 0 beats X for AND
		{V1, VX, VX, V1, VX, VX},
		{VX, VX, VX, VX, VX, VX},
	}
	for _, c := range cases {
		in := func(pin int) V {
			if pin == 0 {
				return c.a
			}
			return c.b
		}
		if got := evalGate3(id("g_and"), in); got != c.and {
			t.Errorf("AND(%v,%v) = %v, want %v", c.a, c.b, got, c.and)
		}
		if got := evalGate3(id("g_or"), in); got != c.or {
			t.Errorf("OR(%v,%v) = %v, want %v", c.a, c.b, got, c.or)
		}
		if got := evalGate3(id("g_xor"), in); got != c.xor {
			t.Errorf("XOR(%v,%v) = %v, want %v", c.a, c.b, got, c.xor)
		}
		if got := evalGate3(id("g_nand"), in); got != c.nand_ {
			t.Errorf("NAND(%v,%v) = %v, want %v", c.a, c.b, got, c.nand_)
		}
	}
}

func TestEvalGate3Mux(t *testing.T) {
	n := mk(t, "INPUT(s)\nINPUT(a)\nINPUT(b)\nm = MUX(s, a, b)\nOUTPUT(m)\n")
	mID, _ := n.SignalByName("m")
	g := n.Gate(mID)
	eval := func(s, a, b V) V {
		return evalGate3(g, func(pin int) V { return [3]V{s, a, b}[pin] })
	}
	if eval(V0, V1, V0) != V1 || eval(V1, V1, V0) != V0 {
		t.Error("mux select wrong")
	}
	if eval(VX, V1, V1) != V1 {
		t.Error("mux with X select and equal inputs must resolve")
	}
	if eval(VX, V1, V0) != VX {
		t.Error("mux with X select and different inputs must be X")
	}
}

func TestScoapBasics(t *testing.T) {
	n := mk(t, `
INPUT(a)
INPUT(b)
n1 = AND(a, b)
n2 = NOT(n1)
OUTPUT(n2)
`)
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	// AND: cc1 = cc1(a)+cc1(b)+1 = 3; cc0 = min(cc0)+1 = 2.
	if sc.cc1[id("n1")] != 3 || sc.cc0[id("n1")] != 2 {
		t.Errorf("AND cc = (%d,%d), want (2,3)", sc.cc0[id("n1")], sc.cc1[id("n1")])
	}
	// NOT swaps.
	if sc.cc0[id("n2")] != 4 || sc.cc1[id("n2")] != 3 {
		t.Errorf("NOT cc = (%d,%d), want (3,4)", sc.cc0[id("n2")], sc.cc1[id("n2")])
	}
	for _, s := range []string{"a", "b", "n1", "n2"} {
		if !sc.reachObs[id(s)] {
			t.Errorf("%s should reach the PO", s)
		}
	}
}

func TestScoapUncontrollableTSV(t *testing.T) {
	n := mk(t, `
TSV_IN(tv)
INPUT(a)
n1 = AND(tv, a)
OUTPUT(n1)
`)
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	if sc.cc1[id("tv")] < infCost {
		t.Error("floating TSV pad must be uncontrollable")
	}
	if sc.cc1[id("n1")] < infCost {
		t.Error("AND needing a floating TSV at 1 must be uncontrollable")
	}
	if sc.cc0[id("n1")] >= infCost {
		t.Error("AND is controllable to 0 through the PI")
	}
}

func TestScoapUnreachableObs(t *testing.T) {
	n := mk(t, `
INPUT(a)
hidden = NOT(a)
vis = BUF(a)
TSV_OUT(u) = hidden
OUTPUT(vis)
`)
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	id := func(s string) netlist.SignalID { i, _ := n.SignalByName(s); return i }
	if sc.reachObs[id("hidden")] {
		t.Error("logic observable only via an unwrapped outbound TSV must not reach obs")
	}
	if !sc.reachObs[id("vis")] {
		t.Error("PO cone must reach obs")
	}
}

// verifyPattern checks via the independent bit-parallel simulator that a
// pattern really detects the fault.
func verifyPattern(t *testing.T, n *netlist.Netlist, f faults.Fault, pat faultsim.Pattern) bool {
	t.Helper()
	sim := faultsim.New(n)
	eng := sim.NewEngine()
	block, err := sim.GoodSim([]faultsim.Pattern{pat})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Detects(f, block)&1 != 0
}

func TestPodemFindsKnownTest(t *testing.T) {
	// z = AND(a,b); z s-a-0 requires a=1,b=1.
	n := mk(t, "INPUT(a)\nINPUT(b)\nz = AND(a, b)\nOUTPUT(z)\n")
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, 50)
	z, _ := n.SignalByName("z")
	rng := rand.New(rand.NewSource(1))
	pat, out := pd.generate(faults.Fault{Gate: z, Pin: faults.OutputPin, StuckAt: 0}, rng)
	if out != genFound {
		t.Fatalf("outcome = %v, want found", out)
	}
	a, _ := n.SignalByName("a")
	b, _ := n.SignalByName("b")
	ai, _ := sim.SourceIndex(a)
	bi, _ := sim.SourceIndex(b)
	if !pat.Get(ai) || !pat.Get(bi) {
		t.Errorf("s-a-0 test for AND output must set both inputs to 1")
	}
	if !verifyPattern(t, n, faults.Fault{Gate: z, Pin: faults.OutputPin, StuckAt: 0}, pat) {
		t.Error("generated pattern does not detect the fault")
	}
}

func TestPodemProvesUntestable(t *testing.T) {
	// Redundant fault: z = OR(a, NOT(a)) is constant 1; z s-a-1 is
	// undetectable.
	n := mk(t, "INPUT(a)\nna = NOT(a)\nz = OR(a, na)\nOUTPUT(z)\n")
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, 100)
	z, _ := n.SignalByName("z")
	rng := rand.New(rand.NewSource(1))
	_, out := pd.generate(faults.Fault{Gate: z, Pin: faults.OutputPin, StuckAt: 1}, rng)
	if out != genUntestable {
		t.Errorf("outcome = %v, want untestable (z is constant 1)", out)
	}
	// The complementary fault is easy.
	pat, out := pd.generate(faults.Fault{Gate: z, Pin: faults.OutputPin, StuckAt: 0}, rng)
	if out != genFound {
		t.Fatalf("z s-a-0 must be testable, got %v", out)
	}
	if !verifyPattern(t, n, faults.Fault{Gate: z, Pin: faults.OutputPin, StuckAt: 0}, pat) {
		t.Error("pattern fails verification")
	}
}

func TestPodemAllFaultsOnRandomCircuit(t *testing.T) {
	// Every PODEM "found" claim must be verified by the independent
	// simulator; every "untestable" claim must be contradicted by no
	// random pattern.
	n, err := netgen.Random(netgen.RandomOptions{Gates: 150, FFs: 14, PIs: 6, POs: 4, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, 600)
	rng := rand.New(rand.NewSource(7))
	eng := sim.NewEngine()

	// Random reference detection set.
	ref := make(map[int]bool)
	list := faults.CollapsedList(n)
	for blk := 0; blk < 8; blk++ {
		pats := make([]faultsim.Pattern, 64)
		for i := range pats {
			pats[i] = sim.RandomPattern(rng)
		}
		block, err := sim.GoodSim(pats)
		if err != nil {
			t.Fatal(err)
		}
		for fi, f := range list {
			if eng.Detects(f, block) != 0 {
				ref[fi] = true
			}
		}
	}

	found, untestable, aborted := 0, 0, 0
	for fi, f := range list {
		pat, out := pd.generate(f, rng)
		switch out {
		case genFound:
			found++
			if !verifyPattern(t, n, f, pat) {
				t.Fatalf("PODEM claims test for %s but simulator disagrees", f.Describe(n))
			}
		case genUntestable:
			untestable++
			if ref[fi] {
				t.Fatalf("PODEM claims %s untestable but a random pattern detects it", f.Describe(n))
			}
		case genAborted:
			aborted++
		}
	}
	if found == 0 {
		t.Fatal("PODEM found no tests at all")
	}
	t.Logf("found=%d untestable=%d aborted=%d of %d", found, untestable, aborted, len(list))
	// Generated random logic carries genuine redundancy; what matters is
	// that nearly every fault is resolved (found or proven untestable)
	// rather than aborted.
	if resolved := found + untestable; float64(resolved) < 0.95*float64(len(list)) {
		t.Errorf("PODEM resolved only %d/%d faults (found %d, untestable %d, aborted %d)",
			resolved, len(list), found, untestable, aborted)
	}
	if float64(found) < 0.55*float64(len(list)) {
		t.Errorf("PODEM found tests for only %d/%d faults", found, len(list))
	}
}

func TestRunStuckAtHighCoverage(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 400, FFs: 16, PIs: 6, POs: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	res, err := Run(n, list, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A bare source-poor random circuit is the worst case for coverage:
	// generated redundancy shows up as untestable faults, and only ~20
	// observation points exist. The paper-suite dies are far friendlier
	// (every wrapped TSV is a test point); their coverage is checked in
	// internal/experiments.
	if res.Coverage() < 0.60 {
		t.Errorf("fault coverage = %.4f, want >= 0.60 on a fully observable circuit", res.Coverage())
	}
	if res.TestCoverage() < 0.80 {
		t.Errorf("test coverage = %.4f, want >= 0.80 (untestable faults excluded)", res.TestCoverage())
	}
	if res.PatternCount() == 0 || res.PatternCount() > len(list) {
		t.Errorf("pattern count %d out of range", res.PatternCount())
	}
	// Re-grade the pattern set independently: must match Detected.
	cov, err := EvaluatePatterns(n, list, res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	if got := int(cov*float64(len(list)) + 0.5); got != res.Detected {
		t.Errorf("independent grading detects %d, result says %d", got, res.Detected)
	}
}

func TestRunDeterministic(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 150, FFs: 8, PIs: 4, POs: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	r1, err := Run(n, list, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(n, list, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Detected != r2.Detected || r1.PatternCount() != r2.PatternCount() {
		t.Errorf("ATPG not deterministic: (%d,%d) vs (%d,%d)",
			r1.Detected, r1.PatternCount(), r2.Detected, r2.PatternCount())
	}
}

func TestRunCompactionShrinks(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 300, FFs: 12, PIs: 5, POs: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	full, err := Run(n, list, Options{Seed: 3, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Run(n, list, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if comp.PatternCount() > full.PatternCount() {
		t.Errorf("compaction grew the pattern set: %d > %d", comp.PatternCount(), full.PatternCount())
	}
	if comp.Coverage() < full.Coverage()-1e-9 {
		t.Errorf("compaction lost coverage: %.4f < %.4f", comp.Coverage(), full.Coverage())
	}
}

func TestRunTransition(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 250, FFs: 10, PIs: 5, POs: 3, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.TransitionList(n)
	res, err := RunTransition(n, list, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.55 {
		t.Errorf("transition fault coverage = %.4f, want >= 0.55", res.Coverage())
	}
	if res.TestCoverage() < 0.70 {
		t.Errorf("transition test coverage = %.4f, want >= 0.70", res.TestCoverage())
	}
	if res.PatternCount() != 2*len(res.Pairs) {
		t.Error("PatternCount must be twice the pair count")
	}
	if len(res.Pairs) == 0 {
		t.Fatal("no transition pairs generated")
	}
}

func TestTransitionNeedsBothVectors(t *testing.T) {
	// A constant site can never transition: both transition faults on a
	// constant-fed buffer must be untestable while the stuck-at view
	// would find one of them.
	n := mk(t, `
INPUT(a)
c = CONST1()
z = BUF(c)
keep = AND(a, z)
OUTPUT(keep)
`)
	list := []faults.TransitionFault{}
	zID, _ := n.SignalByName("z")
	list = append(list,
		faults.TransitionFault{Gate: zID, SlowToRise: true},
		faults.TransitionFault{Gate: zID, SlowToRise: false},
	)
	res, err := RunTransition(n, list, Options{Seed: 1, MaxRandomBlocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Detected != 0 {
		t.Errorf("transition faults on constant logic detected (%d); V1 can never set the opposite value", res.Detected)
	}
}

func TestRunEmptySourcesFails(t *testing.T) {
	n := mk(t, "TSV_IN(t)\nz = BUF(t)\nOUTPUT(z)\n")
	if _, err := Run(n, faults.CollapsedList(n), Options{}); err == nil {
		t.Error("die with no controllable sources must error")
	}
}

func TestJustifyVector(t *testing.T) {
	// justifyVector must produce an assignment that sets the target
	// value, verified by forward simulation.
	n, err := netgen.Random(netgen.RandomOptions{Gates: 120, FFs: 8, PIs: 5, POs: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	sim := faultsim.New(n)
	sc := computeScoap(n,
		func(s netlist.SignalID) bool { _, ok := sim.SourceIndex(s); return ok },
		sim.Observed)
	pd := newPodem(n, sim, sc, 300)
	rng := rand.New(rand.NewSource(2))
	checked := 0
	for i := 0; i < n.NumGates() && checked < 30; i += 3 {
		id := netlist.SignalID(i)
		if !n.TypeOf(id).IsCombinational() {
			continue
		}
		for _, v := range []V{V0, V1} {
			pat, out := pd.justifyVector(id, v, rng)
			if out != genFound {
				continue // may be genuinely unjustifiable (constants)
			}
			block, err := sim.GoodSim([]faultsim.Pattern{pat})
			if err != nil {
				t.Fatal(err)
			}
			got, known := block.Val(id, 0)
			if !known || got != (v == V1) {
				t.Fatalf("justify(%s=%v): simulation says (%v, known=%v)",
					n.NameOf(id), v, got, known)
			}
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("only %d justifications verified", checked)
	}
}

func TestRandomPhaseOnlyVsFull(t *testing.T) {
	// The deterministic phase must add coverage over random-only.
	n, err := netgen.Random(netgen.RandomOptions{Gates: 300, FFs: 12, PIs: 5, POs: 3, Seed: 50})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	randOnly, err := Run(n, list, Options{Seed: 9, MaxBacktracks: 1, MaxRandomBlocks: 4, MinNewDetects: 1000})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(n, list, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if full.Detected <= randOnly.Detected {
		t.Errorf("full flow detected %d, random-only %d", full.Detected, randOnly.Detected)
	}
}

func TestMaxDeterministicCap(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 300, FFs: 12, PIs: 5, POs: 3, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	// Zero random phase, deterministic cap of 5: at most 5 faults can be
	// detected (each pattern may collaterally drop more via flushes, so
	// compare against an uncapped run instead of an exact count).
	capped, err := Run(n, list, Options{
		Seed: 3, MaxRandomBlocks: 1, MinNewDetects: 1 << 30, MaxDeterministic: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	uncapped, err := Run(n, list, Options{
		Seed: 3, MaxRandomBlocks: 1, MinNewDetects: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if capped.PatternCount() > uncapped.PatternCount() {
		t.Errorf("cap must not grow the pattern set: %d > %d",
			capped.PatternCount(), uncapped.PatternCount())
	}
	if capped.Detected >= uncapped.Detected {
		t.Errorf("capped run detected %d, uncapped %d: cap had no effect",
			capped.Detected, uncapped.Detected)
	}
}
