package atpg

import (
	"strings"
	"testing"

	"wcm3d/internal/faults"
	"wcm3d/internal/faultsim"
	"wcm3d/internal/netgen"
)

func TestVectorRoundTrip(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 200, FFs: 10, PIs: 5, POs: 3, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	list := faults.CollapsedList(n)
	res, err := Run(n, list, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sim := faultsim.New(n)
	var sb strings.Builder
	if err := WritePatterns(&sb, sim, res.Patterns); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatterns(strings.NewReader(sb.String()), sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Patterns) {
		t.Fatalf("patterns: wrote %d, read %d", len(res.Patterns), len(back))
	}
	for i := range back {
		for j := 0; j < sim.NumSources(); j++ {
			if back[i].Get(j) != res.Patterns[i].Get(j) {
				t.Fatalf("pattern %d bit %d changed", i, j)
			}
		}
	}
	// The read-back set must grade identically.
	origCov, err := EvaluatePatterns(n, list, res.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	backCov, err := EvaluatePatterns(n, list, back)
	if err != nil {
		t.Fatal(err)
	}
	if origCov != backCov {
		t.Errorf("coverage changed through the file: %.4f -> %.4f", origCov, backCov)
	}
}

func TestReadPatternsErrors(t *testing.T) {
	n, err := netgen.Random(netgen.RandomOptions{Gates: 50, FFs: 4, PIs: 3, POs: 2, Seed: 62})
	if err != nil {
		t.Fatal(err)
	}
	sim := faultsim.New(n)
	cases := []struct {
		name, src string
	}{
		{"vector-before-header", "0101\n"},
		{"unknown-signal", "inputs nosuchsignal\n0\n"},
		{"uncontrollable", "inputs g0\n0\n"},
		{"bad-width", "inputs pi0 pi1\n010\n"},
		{"bad-bit", "inputs pi0\nX\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := ReadPatterns(strings.NewReader(c.src), sim); err == nil {
				t.Error("expected error")
			}
		})
	}
}
