package atpg

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"wcm3d/internal/faultsim"
)

// WritePatterns emits a test-vector file: a header naming every
// controllable source in pattern-bit order, then one line of 0/1 per
// pattern. The format survives re-ordering of the die's scan chain because
// vectors are keyed by signal name, not position.
//
//	# wcm3d vectors for b12_die1
//	inputs pi0 pi1 ff0 ff1 ...
//	0101...
//	1100...
func WritePatterns(w io.Writer, sim *faultsim.Simulator, patterns []faultsim.Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# wcm3d vectors for %s: %d patterns, %d inputs\n",
		sim.N.Name, len(patterns), sim.NumSources())
	fmt.Fprint(bw, "inputs")
	for _, src := range sim.Sources {
		fmt.Fprintf(bw, " %s", sim.N.NameOf(src))
	}
	fmt.Fprintln(bw)
	for _, p := range patterns {
		for j := 0; j < sim.NumSources(); j++ {
			if p.Get(j) {
				bw.WriteByte('1')
			} else {
				bw.WriteByte('0')
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadPatterns parses a vector file written by WritePatterns against a
// simulator for the same die; vectors are re-mapped by signal name, so a
// file survives source reordering.
func ReadPatterns(r io.Reader, sim *faultsim.Simulator) ([]faultsim.Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var order []int // file column -> simulator source index
	var patterns []faultsim.Pattern
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "inputs") {
			names := strings.Fields(line)[1:]
			order = make([]int, len(names))
			for i, name := range names {
				sig, ok := sim.N.SignalByName(name)
				if !ok {
					return nil, fmt.Errorf("atpg: vectors line %d: unknown signal %q", lineNo, name)
				}
				idx, ok := sim.SourceIndex(sig)
				if !ok {
					return nil, fmt.Errorf("atpg: vectors line %d: %q is not controllable", lineNo, name)
				}
				order[i] = idx
			}
			continue
		}
		if order == nil {
			return nil, fmt.Errorf("atpg: vectors line %d: vector before inputs header", lineNo)
		}
		if len(line) != len(order) {
			return nil, fmt.Errorf("atpg: vectors line %d: %d bits for %d inputs", lineNo, len(line), len(order))
		}
		p := faultsim.NewPattern(sim.NumSources())
		for i, ch := range line {
			switch ch {
			case '0':
			case '1':
				p.Set(order[i], true)
			default:
				return nil, fmt.Errorf("atpg: vectors line %d: bad bit %q", lineNo, ch)
			}
		}
		patterns = append(patterns, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("atpg: reading vectors: %w", err)
	}
	return patterns, nil
}
