package atpg

import "wcm3d/internal/netlist"

// infCost marks uncontrollable signals (floating TSV pads and anything
// only they can justify).
const infCost = int32(1 << 28)

// scoap holds SCOAP-style testability measures: cc0/cc1 are the
// combinational 0- and 1-controllability of each signal (smaller = easier),
// and reachObs marks signals with a structural path to an observation
// point. PODEM's backtrace uses the controllabilities to pick the
// easiest-to-justify input, and the driver uses reachObs to declare
// structurally untestable faults without search.
type scoap struct {
	cc0, cc1 []int32
	reachObs []bool
}

func addSat(a, b int32) int32 {
	c := a + b
	if c > infCost {
		return infCost
	}
	return c
}

// computeScoap derives the measures for a netlist, given which signals are
// controllable sources and which are observed.
func computeScoap(n *netlist.Netlist, controllable func(netlist.SignalID) bool, observed func(netlist.SignalID) bool) *scoap {
	ng := n.NumGates()
	sc := &scoap{
		cc0:      make([]int32, ng),
		cc1:      make([]int32, ng),
		reachObs: make([]bool, ng),
	}
	for _, id := range n.TopoOrder() {
		g := n.Gate(id)
		switch {
		case g.Type == netlist.GateConst0:
			sc.cc0[id], sc.cc1[id] = 1, infCost
		case g.Type == netlist.GateConst1:
			sc.cc0[id], sc.cc1[id] = infCost, 1
		case g.Type.IsSource() || g.Type == netlist.GateDFF:
			if controllable(id) {
				sc.cc0[id], sc.cc1[id] = 1, 1
			} else {
				sc.cc0[id], sc.cc1[id] = infCost, infCost
			}
		default:
			sc.cc0[id], sc.cc1[id] = gateCC(g, sc)
		}
	}
	// Backward reachability to observation points, through combinational
	// gates only (a DFF D pin is itself an observation point in full
	// scan, so effects never need to cross a DFF).
	fanouts := n.Fanouts()
	order := n.TopoOrder()
	for k := len(order) - 1; k >= 0; k-- {
		id := order[k]
		if observed(id) {
			sc.reachObs[id] = true
			continue
		}
		for _, fo := range fanouts[id] {
			if n.TypeOf(fo).IsCombinational() && sc.reachObs[fo] {
				sc.reachObs[id] = true
				break
			}
		}
	}
	return sc
}

// gateCC computes (cc0, cc1) of a combinational gate from fanin measures.
func gateCC(g *netlist.Gate, sc *scoap) (int32, int32) {
	in0 := func(pin int) int32 { return sc.cc0[g.Fanin[pin]] }
	in1 := func(pin int) int32 { return sc.cc1[g.Fanin[pin]] }
	minOver := func(f func(int) int32) int32 {
		m := infCost
		for i := range g.Fanin {
			if c := f(i); c < m {
				m = c
			}
		}
		return m
	}
	sumOver := func(f func(int) int32) int32 {
		var s int32 = 0
		for i := range g.Fanin {
			s = addSat(s, f(i))
		}
		return s
	}
	switch g.Type {
	case netlist.GateBuf:
		return addSat(in0(0), 1), addSat(in1(0), 1)
	case netlist.GateNot:
		return addSat(in1(0), 1), addSat(in0(0), 1)
	case netlist.GateAnd:
		return addSat(minOver(in0), 1), addSat(sumOver(in1), 1)
	case netlist.GateNand:
		return addSat(sumOver(in1), 1), addSat(minOver(in0), 1)
	case netlist.GateOr:
		return addSat(sumOver(in0), 1), addSat(minOver(in1), 1)
	case netlist.GateNor:
		return addSat(minOver(in1), 1), addSat(sumOver(in0), 1)
	case netlist.GateXor, netlist.GateXnor:
		// For 2-input XOR: cc0 = min(both-0, both-1)+1, cc1 = min of
		// mixed pairs. Generalize pairwise for wider gates (approximate
		// but monotone, which is all backtrace needs).
		even := int32(0) // cheapest way to get even parity of 1s
		odd := infCost
		for i := range g.Fanin {
			c0, c1 := in0(i), in1(i)
			nEven := minI32(addSat(even, c0), addSat(odd, c1))
			nOdd := minI32(addSat(even, c1), addSat(odd, c0))
			even, odd = nEven, nOdd
		}
		if g.Type == netlist.GateXor {
			return addSat(even, 1), addSat(odd, 1)
		}
		return addSat(odd, 1), addSat(even, 1)
	case netlist.GateMux2:
		s0, s1 := in0(0), in1(0)
		a0, a1 := in0(1), in1(1)
		b0, b1 := in0(2), in1(2)
		cc0 := minI32(addSat(s0, a0), addSat(s1, b0))
		cc1 := minI32(addSat(s0, a1), addSat(s1, b1))
		return addSat(cc0, 1), addSat(cc1, 1)
	default:
		return infCost, infCost
	}
}

func minI32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// cost returns the controllability of driving sig to v.
func (sc *scoap) cost(sig netlist.SignalID, v V) int32 {
	if v == V1 {
		return sc.cc1[sig]
	}
	return sc.cc0[sig]
}
