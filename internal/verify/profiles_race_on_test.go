//go:build race

package verify_test

// raceEnabled lets the profile certification suite shrink its die set
// under the race detector's overhead.
const raceEnabled = true
