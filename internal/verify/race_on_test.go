//go:build race

package verify

// raceEnabled lets the certification suite shrink its die set under the
// race detector, whose 5-20x slowdown would otherwise dominate CI.
const raceEnabled = true
