package verify

import (
	"fmt"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// tinyDie builds a die small enough for the exhaustive oracle: at most six
// TSVs per side, with the flip-flop supply cycling through scarce, matched
// and abundant regimes (the greedy partitioner behaves very differently in
// each — see docs/VERIFICATION.md). RefreshTiming stays nil so both solvers
// price both phases against the same base analysis.
func tinyDie(t testing.TB, seed int64) wcm.Input {
	t.Helper()
	rng := seed
	in := 2 + int(rng%5)       // 2..6
	out := 2 + int((rng/7)%5)  // 2..6
	gates := 120 + int(rng%97) // vary the logic around the TSVs
	ffs := 0
	switch seed % 3 {
	case 0: // scarce: reuse is the bottleneck, merging is forced
		ffs = (in + out) / 2
	case 1: // matched
		ffs = in + out
	case 2: // abundant: merging competes with flip-flop attachment
		ffs = 3 * (in + out)
	}
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: gates, FFs: ffs, PIs: 4, POs: 2,
		InboundTSVs: in, OutboundTSVs: out, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: base}
}

// firstPhaseReuse extracts the flip-flops the heuristic consumed in its
// first phase, so the oracle's second phase can replay the exact
// availability the heuristic faced.
func firstPhaseReuse(res *wcm.Result) []netlist.SignalID {
	var out []netlist.SignalID
	if len(res.Phases) == 0 {
		return out
	}
	if res.Phases[0].Inbound {
		for _, g := range res.Assignment.Control {
			if g.Reused() {
				out = append(out, g.ReusedFF)
			}
		}
	} else {
		for _, g := range res.Assignment.Observe {
			if g.Reused() {
				out = append(out, g.ReusedFF)
			}
		}
	}
	return out
}

// TestOracleNeverBeatenByHeuristic is the differential acceptance gate: on
// 200 seeded tiny dies (40 under -short or the race detector) the
// exhaustive oracle — replaying the heuristic's first-phase flip-flop
// consumption so each phase optimizes under identical availability — must
// never need more additional cells than the greedy heuristic. Every seed
// where it needs strictly fewer is a real suboptimality of Algorithm 2's
// greedy merging; those are logged and bounded, not failed (see
// docs/VERIFICATION.md).
func TestOracleNeverBeatenByHeuristic(t *testing.T) {
	seeds := 200
	if testing.Short() || raceEnabled {
		seeds = 40
	}
	gaps := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		in := tinyDie(t, seed)
		opts := wcm.DefaultOptions()
		res, err := wcm.Run(in, opts)
		if err != nil {
			t.Fatalf("seed %d: heuristic: %v", seed, err)
		}
		// Replay mode: the oracle's second phase sees exactly the
		// flip-flop availability the heuristic faced, which makes
		// oracle ≤ heuristic a theorem per phase. (Its combined
		// assignment may double-book a flip-flop between its own first
		// phase and the replayed second — replay exists for the cell
		// count, not for a buildable plan.)
		replay, err := Oracle(in, opts, OracleOptions{ReplayConsumption: firstPhaseReuse(res)})
		if err != nil {
			t.Fatalf("seed %d: oracle (replay): %v", seed, err)
		}
		if replay.AdditionalCells > res.AdditionalCells {
			t.Errorf("seed %d: oracle %d cells > heuristic %d — one of them is wrong",
				seed, replay.AdditionalCells, res.AdditionalCells)
		}
		if replay.AdditionalCells < res.AdditionalCells {
			gaps++
			t.Logf("seed %d: heuristic gap: oracle %d cells, heuristic %d (reuse %d vs %d)",
				seed, replay.AdditionalCells, res.AdditionalCells, replay.ReusedFFs, res.ReusedFFs)
		}
		// Self-sequential mode consumes its own first-phase matches, so
		// its combined plan is buildable end to end — certify it and the
		// heuristic's under the same contract.
		orc, err := Oracle(in, opts, OracleOptions{})
		if err != nil {
			t.Fatalf("seed %d: oracle: %v", seed, err)
		}
		vres, err := Plan(in, res.Assignment, Options{Thresholds: &res.Options})
		if err != nil {
			t.Fatalf("seed %d: verify heuristic: %v", seed, err)
		}
		if !vres.OK() {
			t.Errorf("seed %d: heuristic plan rejected: %v", seed, vres.Violations)
		}
		ores, err := Plan(in, orc.Assignment, Options{Thresholds: &res.Options})
		if err != nil {
			t.Fatalf("seed %d: verify oracle: %v", seed, err)
		}
		if !ores.OK() {
			t.Errorf("seed %d: oracle plan rejected: %v", seed, ores.Violations)
		}
		if err := orc.Assignment.Validate(in.Netlist); err != nil {
			t.Errorf("seed %d: oracle plan invalid: %v", seed, err)
		}
		if !orc.Assignment.Covered(in.Netlist) {
			t.Errorf("seed %d: oracle plan does not cover every TSV", seed)
		}
	}
	t.Logf("heuristic matched the oracle on %d/%d dies (%d gaps)", seeds-gaps, seeds, gaps)
	// Measured on these profiles the greedy partitioner misses the
	// optimum on roughly a third of tiny dies with abundant flip-flops
	// (it merges TSV cliques so large that no disjoint-cone flip-flop can
	// attach; see docs/VERIFICATION.md). Bound it at half so a regression
	// that widens the gap still fails loudly.
	if gaps > seeds/2 {
		t.Errorf("heuristic missed the optimum on %d/%d dies — worse than the documented bound (50%%)", gaps, seeds)
	}
}

// TestOracleAcrossOrders exercises the oracle under every phase-order
// policy so its order derivation stays locked to the optimizer's.
func TestOracleAcrossOrders(t *testing.T) {
	orders := []wcm.OrderPolicy{
		wcm.OrderLargerFirst, wcm.OrderSmallerFirst,
		wcm.OrderInboundFirst, wcm.OrderOutboundFirst,
	}
	for _, order := range orders {
		t.Run(order.String(), func(t *testing.T) {
			in := tinyDie(t, 23)
			opts := wcm.DefaultOptions()
			opts.Order = order
			res, err := wcm.Run(in, opts)
			if err != nil {
				t.Fatal(err)
			}
			orc, err := Oracle(in, opts, OracleOptions{ReplayConsumption: firstPhaseReuse(res)})
			if err != nil {
				t.Fatal(err)
			}
			if orc.Phases[0].Inbound != res.Phases[0].Inbound {
				t.Errorf("oracle phase order %v, heuristic %v", orc.Phases[0].Inbound, res.Phases[0].Inbound)
			}
			if orc.AdditionalCells > res.AdditionalCells {
				t.Errorf("oracle %d cells > heuristic %d", orc.AdditionalCells, res.AdditionalCells)
			}
		})
	}
}

// TestOracleRejectsOversizedDies locks the exhaustive bound.
func TestOracleRejectsOversizedDies(t *testing.T) {
	in := prep(t, 400, 20, DefaultOracleMaxItems+3, 4, 3)
	_, err := Oracle(in, wcm.DefaultOptions(), OracleOptions{})
	if err == nil {
		t.Fatal("oracle must refuse dies beyond its enumeration bound")
	}
}

// TestOracleRejectsRefreshTiming locks the parity precondition.
func TestOracleRejectsRefreshTiming(t *testing.T) {
	in := tinyDie(t, 5)
	in.RefreshTiming = func(*scan.Assignment) (*sta.Result, error) { return nil, nil }
	if _, err := Oracle(in, wcm.DefaultOptions(), OracleOptions{}); err == nil {
		t.Fatal("oracle must reject a RefreshTiming hook")
	}
}

// TestOracleExactOnHandCase pins the solver on a die tiny enough to reason
// about by hand: with sharing disabled by an impossible cap budget the
// optimum is one dedicated cell per TSV (minus any flip-flop matches).
func TestOracleExactOnHandCase(t *testing.T) {
	in := tinyDie(t, 31)
	n := in.Netlist
	opts := wcm.DefaultOptions()
	opts.CapThFF = 1e-9 // nothing fits with anything
	orc, err := Oracle(in, opts, OracleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantBlocks := len(n.InboundTSVs()) + len(n.OutboundTSVs())
	got := 0
	for _, g := range orc.Assignment.Control {
		if len(g.TSVs) != 1 {
			t.Errorf("cap budget 0 must force singletons, got %d TSVs", len(g.TSVs))
		}
		got++
	}
	for _, g := range orc.Assignment.Observe {
		if len(g.Ports) != 1 {
			t.Errorf("cap budget 0 must force singletons, got %d ports", len(g.Ports))
		}
		got++
	}
	if got != wantBlocks {
		t.Errorf("groups = %d, want %d", got, wantBlocks)
	}
	// With a zero cap budget no flip-flop can merge either (the attach
	// merge re-checks the budget), so every cell is dedicated.
	if orc.ReusedFFs != 0 {
		t.Errorf("reuse under a zero cap budget: %d", orc.ReusedFFs)
	}
	if orc.AdditionalCells != wantBlocks {
		t.Errorf("cells = %d, want %d", orc.AdditionalCells, wantBlocks)
	}
	_ = fmt.Sprintf
}
