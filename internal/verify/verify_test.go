package verify

import (
	"math"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// prep builds a placed, timed die with the given profile knobs — the same
// shape internal/wcm's own tests use.
func prep(t testing.TB, gates, ffsN, in, out int, seed int64) wcm.Input {
	t.Helper()
	n, err := netgen.Random(netgen.RandomOptions{
		Gates: gates, FFs: ffsN, PIs: 5, POs: 3,
		InboundTSVs: in, OutboundTSVs: out, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	lib := cells.Default45nm()
	pl, err := place.Place(n, place.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	base, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
	if err != nil {
		t.Fatal(err)
	}
	return wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: base}
}

// runAndVerify runs the heuristic and demands certification.
func runAndVerify(t *testing.T, in wcm.Input, opts wcm.Options) (*wcm.Result, *Result) {
	t.Helper()
	res, err := wcm.Run(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	vres, err := Plan(in, res.Assignment, Options{Thresholds: &res.Options})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vres.Violations {
		t.Errorf("violation: %s", v)
	}
	return res, vres
}

func codes(vs []Violation) map[Code]int {
	m := make(map[Code]int)
	for _, v := range vs {
		m[v.Code]++
	}
	return m
}

func hasCode(vs []Violation, c Code) bool { return codes(vs)[c] > 0 }

func TestCertifiesHeuristicPlan(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 1)
	res, vres := runAndVerify(t, in, wcm.DefaultOptions())
	if vres.Groups == 0 || vres.ReusedFFs != res.ReusedFFs {
		t.Errorf("report mismatch: %+v vs result reuse %d", vres, res.ReusedFFs)
	}
}

func TestCertifiesFullWrapStructurally(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 2)
	asn := scan.FullWrap(in.Netlist)
	vres, err := Plan(in, asn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !vres.OK() {
		t.Fatalf("full wrap must certify structurally: %v", vres.Violations)
	}
}

// Mutation tests: corrupt a certified plan one invariant at a time and
// demand the verifier names the exact broken contract.

func certifiedPlan(t *testing.T, seed int64) (wcm.Input, *wcm.Result) {
	t.Helper()
	in := prep(t, 400, 20, 12, 12, seed)
	res, err := wcm.Run(in, wcm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return in, res
}

// clone deep-copies an assignment so mutations don't leak across subtests.
func clone(a *scan.Assignment) *scan.Assignment {
	out := &scan.Assignment{BufferedRouting: a.BufferedRouting}
	for _, g := range a.Control {
		out.Control = append(out.Control, scan.ControlGroup{
			ReusedFF: g.ReusedFF, TSVs: append([]netlist.SignalID(nil), g.TSVs...),
		})
	}
	for _, g := range a.Observe {
		out.Observe = append(out.Observe, scan.ObserveGroup{
			ReusedFF: g.ReusedFF, Ports: append([]int(nil), g.Ports...),
		})
	}
	return out
}

func TestMutationsAreCaught(t *testing.T) {
	in, res := certifiedPlan(t, 11)
	n := in.Netlist
	th := res.Options

	verify := func(asn *scan.Assignment) *Result {
		t.Helper()
		vres, err := Plan(in, asn, Options{Thresholds: &th})
		if err != nil {
			t.Fatal(err)
		}
		return vres
	}

	t.Run("baseline certifies", func(t *testing.T) {
		if v := verify(res.Assignment); !v.OK() {
			t.Fatalf("baseline must certify: %v", v.Violations)
		}
	})

	t.Run("empty group", func(t *testing.T) {
		m := clone(res.Assignment)
		m.Control = append(m.Control, scan.ControlGroup{ReusedFF: netlist.InvalidSignal})
		if v := verify(m); !hasCode(v.Violations, CodeEmptyGroup) {
			t.Errorf("want %s, got %v", CodeEmptyGroup, v.Violations)
		}
	})

	t.Run("wrong-type member", func(t *testing.T) {
		m := clone(res.Assignment)
		// A flip-flop is not an inbound TSV pad.
		m.Control[0].TSVs[0] = n.FlipFlops()[0]
		v := verify(m)
		if !hasCode(v.Violations, CodeBadMember) {
			t.Errorf("want %s, got %v", CodeBadMember, v.Violations)
		}
		if !hasCode(v.Violations, CodeUncovered) {
			t.Errorf("dropping the pad must also flag %s", CodeUncovered)
		}
	})

	t.Run("invalid signal id member", func(t *testing.T) {
		m := clone(res.Assignment)
		m.Control[0].TSVs[0] = netlist.SignalID(1 << 30)
		if v := verify(m); !hasCode(v.Violations, CodeBadMember) {
			t.Errorf("want %s, got %v", CodeBadMember, v.Violations)
		}
	})

	t.Run("duplicate TSV", func(t *testing.T) {
		m := clone(res.Assignment)
		tsv := m.Control[0].TSVs[0]
		m.Control = append(m.Control, scan.ControlGroup{ReusedFF: netlist.InvalidSignal, TSVs: []netlist.SignalID{tsv}})
		if v := verify(m); !hasCode(v.Violations, CodeDuplicate) {
			t.Errorf("want %s, got %v", CodeDuplicate, v.Violations)
		}
	})

	t.Run("dropped group uncovers TSVs", func(t *testing.T) {
		m := clone(res.Assignment)
		m.Control = m.Control[1:]
		if v := verify(m); !hasCode(v.Violations, CodeUncovered) {
			t.Errorf("want %s, got %v", CodeUncovered, v.Violations)
		}
	})

	t.Run("bad port index", func(t *testing.T) {
		m := clone(res.Assignment)
		m.Observe[0].Ports[0] = len(n.Outputs) + 5
		if v := verify(m); !hasCode(v.Violations, CodeBadMember) {
			t.Errorf("want %s, got %v", CodeBadMember, v.Violations)
		}
	})

	t.Run("non-DFF reuse", func(t *testing.T) {
		m := clone(res.Assignment)
		m.Control[0].ReusedFF = n.InboundTSVs()[0]
		if v := verify(m); !hasCode(v.Violations, CodeBadReuse) {
			t.Errorf("want %s, got %v", CodeBadReuse, v.Violations)
		}
	})

	t.Run("FF double use", func(t *testing.T) {
		m := clone(res.Assignment)
		var ff netlist.SignalID = netlist.InvalidSignal
		for _, g := range m.Control {
			if g.Reused() {
				ff = g.ReusedFF
				break
			}
		}
		if ff == netlist.InvalidSignal {
			t.Skip("plan reuses no control-side flip-flop")
		}
		m.Observe[0].ReusedFF = ff
		v := verify(m)
		if !hasCode(v.Violations, CodeFFDoubleUse) {
			t.Errorf("want %s, got %v", CodeFFDoubleUse, v.Violations)
		}
	})

	t.Run("all TSVs in one group breaks cap budget", func(t *testing.T) {
		m := clone(res.Assignment)
		var all []netlist.SignalID
		for _, g := range m.Control {
			all = append(all, g.TSVs...)
		}
		m.Control = []scan.ControlGroup{{ReusedFF: netlist.InvalidSignal, TSVs: all}}
		v := verify(m)
		if !hasCode(v.Violations, CodeCapBudget) {
			t.Errorf("want %s, got %v", CodeCapBudget, v.Violations)
		}
	})

	t.Run("tight distance threshold flags spread groups", func(t *testing.T) {
		tight := th
		tight.DistThUM = 1e-6 // nothing is this close
		foundShared := false
		for _, g := range res.Assignment.Control {
			if len(g.TSVs) >= 2 || g.Reused() {
				foundShared = true
			}
		}
		if !foundShared {
			t.Skip("plan has no shared control group")
		}
		vres, err := Plan(in, res.Assignment, Options{Thresholds: &tight})
		if err != nil {
			t.Fatal(err)
		}
		if !hasCode(vres.Violations, CodeDistance) {
			t.Errorf("want %s, got %v", CodeDistance, vres.Violations)
		}
	})

	t.Run("overlap ban flags overlapped plans", func(t *testing.T) {
		// Force heavy sharing on a small die so some cones overlap, then
		// verify against a contract that forbids overlap.
		loose := wcm.DefaultOptions()
		loose.DistThUM = math.Inf(1)
		res2, err := wcm.Run(in, loose)
		if err != nil {
			t.Fatal(err)
		}
		if res2.TotalOverlapEdges() == 0 {
			t.Skip("no overlap edges on this die")
		}
		banned := res2.Options
		banned.AllowOverlap = false
		vres, err := Plan(in, res2.Assignment, Options{Thresholds: &banned})
		if err != nil {
			t.Fatal(err)
		}
		// The plan may or may not have kept an overlapped pair in a final
		// clique; only demand a violation when it did. Re-verify under the
		// true contract to distinguish.
		trueRes, err := Plan(in, res2.Assignment, Options{Thresholds: &res2.Options})
		if err != nil {
			t.Fatal(err)
		}
		if !trueRes.OK() {
			t.Fatalf("plan must certify under its own contract: %v", trueRes.Violations)
		}
		_ = vres // exercised the path; presence of violations is die-dependent
	})
}

func TestAnchorAliasDetected(t *testing.T) {
	// Hand-build the alias: two observe members folded onto the same
	// driver signal. li.Run rejects exactly this pairing, so the verifier
	// must flag it even in structural-only mode.
	in := prep(t, 300, 12, 6, 6, 3)
	n := in.Netlist
	ports := n.OutboundTSVs()
	if len(ports) < 2 {
		t.Fatal("need two outbound ports")
	}
	asn := scan.FullWrap(n)
	// Merge the first two outbound singletons into one group, then alias
	// the second port's member onto the first port's signal by duplicating
	// the port index — structurally a duplicate; instead simulate an alias
	// via two distinct ports sharing a driver if the die has one.
	sigOf := map[netlist.SignalID][]int{}
	for _, p := range ports {
		sigOf[n.Outputs[p].Signal] = append(sigOf[n.Outputs[p].Signal], p)
	}
	for _, ps := range sigOf {
		if len(ps) >= 2 {
			asn = dropPorts(asn, ps[:2])
			asn.Observe = append(asn.Observe, scan.ObserveGroup{ReusedFF: netlist.InvalidSignal, Ports: ps[:2]})
			vres, err := Plan(in, asn, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !hasCode(vres.Violations, CodeAnchorAlias) {
				t.Fatalf("want %s, got %v", CodeAnchorAlias, vres.Violations)
			}
			return
		}
	}
	t.Skip("die has no two ports sharing a driver")
}

// dropPorts removes the given ports' singleton groups from a full wrap.
func dropPorts(a *scan.Assignment, ports []int) *scan.Assignment {
	drop := map[int]bool{}
	for _, p := range ports {
		drop[p] = true
	}
	out := clone(a)
	var keep []scan.ObserveGroup
	for _, g := range out.Observe {
		if len(g.Ports) == 1 && drop[g.Ports[0]] {
			continue
		}
		keep = append(keep, g)
	}
	out.Observe = keep
	return out
}

func TestSlackViolationsUnderTightenedContract(t *testing.T) {
	// Re-analyze the die at a barely-feasible clock so slack is scarce,
	// plan under a loose contract, then verify against a tight one: any
	// reuse the loose plan made must now break the slack codes.
	in := prep(t, 400, 20, 12, 12, 17)
	tight, err := sta.Analyze(in.Netlist, in.Lib, sta.Config{
		ClockPS:   in.Timing.CriticalPathPS() + 40,
		Placement: in.Placement,
	})
	if err != nil {
		t.Fatal(err)
	}
	in.Timing = tight
	loose := wcm.DefaultOptions()
	loose.SlackSpendFrac = math.Inf(1)
	loose.SlackThPS = math.Inf(-1)
	res, err := wcm.Run(in, loose)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReusedFFs == 0 {
		t.Skip("loose plan reused nothing; no slack contract to break")
	}
	strict := res.Options
	strict.SlackSpendFrac = 1e-9
	strict.SlackThPS = 1e9
	vres, err := Plan(in, res.Assignment, Options{Thresholds: &strict})
	if err != nil {
		t.Fatal(err)
	}
	c := codes(vres.Violations)
	if c[CodeControlSlack]+c[CodeObserveSlack]+c[CodeTapSlack] == 0 {
		t.Errorf("tightened slack contract must flag reuse: %v", vres.Violations)
	}
}

func TestPlanErrorsOnBadInput(t *testing.T) {
	in := prep(t, 300, 12, 6, 6, 5)
	asn := scan.FullWrap(in.Netlist)
	if _, err := Plan(wcm.Input{}, asn, Options{}); err == nil {
		t.Error("nil netlist must error")
	}
	if _, err := Plan(in, nil, Options{}); err == nil {
		t.Error("nil assignment must error")
	}
	th := wcm.DefaultOptions()
	noTiming := in
	noTiming.Timing = nil
	if _, err := Plan(noTiming, asn, Options{Thresholds: &th}); err == nil {
		t.Error("thresholds without timing must error")
	}
}

func TestSignoffRuns(t *testing.T) {
	in := prep(t, 300, 12, 8, 8, 9)
	res, err := wcm.Run(in, wcm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vres, err := Plan(in, res.Assignment, Options{Thresholds: &res.Options, Signoff: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(vres.SignoffWNSPS) {
		t.Error("signoff must record a WNS")
	}
	// At a 100 ns clock the die has enormous slack; the plan must pass.
	if hasCode(vres.Violations, CodeSignoff) {
		t.Errorf("signoff violation at a loose clock: %v", vres.Violations)
	}
}

func TestDeepModeMeasures(t *testing.T) {
	// Force overlap sharing, then demand deep mode records measurements
	// without turning advisories into violations.
	in := prep(t, 500, 16, 14, 14, 7)
	res, err := wcm.Run(in, wcm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vres, err := Plan(in, res.Assignment, Options{Thresholds: &res.Options, Deep: true})
	if err != nil {
		t.Fatal(err)
	}
	if vres.Deep == nil {
		t.Fatal("deep stats missing")
	}
	if !vres.OK() {
		t.Errorf("deep findings must stay warnings: %v", vres.Violations)
	}
	if vres.Deep.OverlapPairs > 0 && vres.Deep.SharedGates == 0 {
		t.Error("overlapping pairs recorded but no shared gates collected")
	}
}
