package verify

import "wcm3d/internal/netlist"

// The cone walks below intentionally share nothing with the optimizer's
// BitSet/ConeSet machinery: plain map sets, explicit stacks, the traversal
// rules transcribed from the paper rather than from internal/netlist's
// indexes. They are slower — that is the price of an independent opinion.

// naiveFaninCone collects every signal that can influence the anchor
// through combinational logic. The walk expands backwards through gate
// fan-ins and stops at sources (primary inputs, TSV pads, constants) and at
// flip-flop outputs other than the anchor itself — those are the sequential
// and interface boundaries of the cone; the boundary signals themselves are
// part of the cone.
func naiveFaninCone(n *netlist.Netlist, anchor netlist.SignalID) map[netlist.SignalID]bool {
	cone := map[netlist.SignalID]bool{anchor: true}
	stack := []netlist.SignalID{anchor}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		t := n.TypeOf(s)
		if t.IsSource() || (t == netlist.GateDFF && s != anchor) {
			continue
		}
		for _, f := range n.Gate(s).Fanin {
			if !cone[f] {
				cone[f] = true
				stack = append(stack, f)
			}
		}
	}
	return cone
}

// naiveFanoutCone collects every signal the anchor can influence through
// combinational logic. The walk expands forward through fan-outs and stops
// at flip-flops other than the anchor (the flip-flop itself is included as
// the capture boundary).
func naiveFanoutCone(n *netlist.Netlist, anchor netlist.SignalID) map[netlist.SignalID]bool {
	fanouts := n.Fanouts()
	cone := map[netlist.SignalID]bool{anchor: true}
	stack := []netlist.SignalID{anchor}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.TypeOf(s) == netlist.GateDFF && s != anchor {
			continue
		}
		for _, f := range fanouts[s] {
			if !cone[f] {
				cone[f] = true
				stack = append(stack, f)
			}
		}
	}
	return cone
}

// maskedOverlap counts the shared members of two cones after masking out
// sources and flip-flops — the same masking Algorithm 1 applies before its
// disjointness test: a shared primary input or a shared upstream flip-flop
// is a fan-out point of the circuit, not shared *combinational* logic, and
// does not alias test responses. Every shared gate is also recorded in
// collect so deep mode can build its fault list from the union of all
// overlaps.
func maskedOverlap(n *netlist.Netlist, a, b map[netlist.SignalID]bool, collect map[netlist.SignalID]bool) int {
	small, large := a, b
	if len(b) < len(a) {
		small, large = b, a
	}
	shared := 0
	for s := range small {
		if !large[s] {
			continue
		}
		t := n.TypeOf(s)
		if t.IsSource() || t == netlist.GateDFF {
			continue
		}
		shared++
		if collect != nil {
			collect[s] = true
		}
	}
	return shared
}
