// Package verify is the independent plan checker: given the same inputs the
// optimizer saw (netlist, placement, library, timing) and a finished wrapper
// plan, it re-derives every invariant the paper's flow promises — full TSV
// controllability/observability, clique-partition validity (pairwise cone
// disjointness or threshold-bounded overlap, distance, capacitance budgets),
// and the per-reuse timing-slack budgets of the cap+wire model — from
// scratch, and reports everything that does not hold as a structured list of
// Violations.
//
// The point of the package is trust, not speed: it shares no code with the
// optimizer's hot path. Cones are walked with a plain map-based DFS instead
// of the precomputed BitSet ConeSet, pair conditions are re-evaluated from
// the paper's formulas rather than replayed from graph state, and phase-two
// slacks are re-derived through internal/sta via the input's RefreshTiming
// hook. A bug in the optimizer's indexes, striping, or bitset algebra
// therefore cannot hide itself: the verifier would flag the plan.
//
// Plan is the entry point. The oracle (Oracle) and the fuzz harness
// (FuzzPlan) build on it; cmd/verify and the wcmd service expose it to
// operators.
package verify

import (
	"fmt"
	"math"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// Code classifies a violation. Every invariant the verifier re-derives has
// its own code so tests (and operators) can assert on exactly which contract
// broke.
type Code string

// Violation codes.
const (
	// CodeEmptyGroup flags a group with no TSV members.
	CodeEmptyGroup Code = "empty-group"
	// CodeBadMember flags a member that is not a TSV of the right
	// direction (or not a valid signal/port at all).
	CodeBadMember Code = "bad-member"
	// CodeDuplicate flags a TSV or port claimed by two groups.
	CodeDuplicate Code = "duplicate-member"
	// CodeUncovered flags a TSV no group covers — the die would ship with
	// an untestable pre-bond interface.
	CodeUncovered Code = "uncovered-tsv"
	// CodeBadReuse flags a reused control/capture point that is not a
	// scan flip-flop.
	CodeBadReuse Code = "bad-reuse"
	// CodeFFDoubleUse flags a flip-flop reused by two groups.
	CodeFFDoubleUse Code = "ff-double-use"
	// CodeAnchorAlias flags two members of one group anchored on the same
	// signal: XOR folding of a signal with itself cancels, so the pair
	// would be unobservable.
	CodeAnchorAlias Code = "anchor-alias"
	// CodeConeOverlap flags shared combinational logic between two
	// members of a group that the thresholds (cov_th, p_th) do not admit —
	// or any overlap at all when the plan claims no overlap budget.
	CodeConeOverlap Code = "cone-overlap"
	// CodeCapBudget flags a shared group whose accumulated drive load
	// breaks cap_th.
	CodeCapBudget Code = "cap-budget"
	// CodePadLoad flags an inbound pad inside a shared group whose
	// downstream pin load exceeds what a library wrapper mux can drive.
	CodePadLoad Code = "pad-load"
	// CodeDistance flags two members of a group farther apart than d_th.
	CodeDistance Code = "distance"
	// CodeControlSlack flags a control-side reused flip-flop whose launch
	// slack cannot absorb the test-mux load the reuse hangs on its Q.
	CodeControlSlack Code = "control-slack"
	// CodeObserveSlack flags an observe-side reused flip-flop whose D
	// path cannot absorb the inserted test mux within s_th.
	CodeObserveSlack Code = "observe-slack"
	// CodeTapSlack flags an observed signal inside a shared group whose
	// driver slack cannot pay for the observation tap on top of s_th.
	CodeTapSlack Code = "tap-slack"
	// CodeSignoff flags a functional-mode timing violation of the plan's
	// physical test hardware (WNS < 0).
	CodeSignoff Code = "signoff"
	// CodeCoverageLoss and CodePatternGrowth are deep-mode advisories:
	// ATPG measured on the shared cones lost more coverage / grew more
	// patterns than the per-edge thresholds promise in aggregate.
	CodeCoverageLoss  Code = "measured-coverage-loss"
	CodePatternGrowth Code = "measured-pattern-growth"
)

// Violation is one broken invariant.
type Violation struct {
	// Code classifies the invariant.
	Code Code `json:"code"`
	// Where locates the group or pair, e.g. "control[3]".
	Where string `json:"where,omitempty"`
	// Signal names the offending signal when there is one.
	Signal string `json:"signal,omitempty"`
	// Got and Limit quantify threshold violations (Got broke Limit).
	Got   float64 `json:"got,omitempty"`
	Limit float64 `json:"limit,omitempty"`
	// Detail is the human-readable account.
	Detail string `json:"detail"`
}

// String renders the violation for logs and CLI output.
func (v Violation) String() string {
	s := string(v.Code)
	if v.Where != "" {
		s += " at " + v.Where
	}
	if v.Signal != "" {
		s += " (" + v.Signal + ")"
	}
	return s + ": " + v.Detail
}

// Options selects what the verifier checks beyond structural validity.
type Options struct {
	// Thresholds is the effective optimizer configuration the plan claims
	// to honor (Result.Options of a wcm.Run, or any Options normalized by
	// WithDefaults). Nil verifies structure and coverage only — the right
	// mode for plans from solvers without a threshold contract (full-wrap,
	// Li's matching).
	Thresholds *wcm.Options
	// Signoff additionally materializes the plan's physical test hardware
	// (scan.ApplyFunctionalMode) and re-runs static timing with test_en
	// tied low; WNS < 0 becomes a CodeSignoff violation.
	Signoff bool
	// Deep additionally re-measures overlapped-cone sharing with real
	// ATPG on the shared cones (see deep.go). Findings are reported as
	// Warnings: ATPG outcomes on small fault subsets are noisy, so they
	// advise rather than fail certification.
	Deep bool
	// DeepBudget tunes the deep-mode ATPG effort; the zero value gets a
	// reduced budget sized for verification.
	DeepBudget DeepBudget
}

// Result is the verifier's report.
type Result struct {
	// Violations lists every broken invariant (empty means certified).
	Violations []Violation `json:"violations,omitempty"`
	// Warnings lists deep-mode advisories that do not fail certification.
	Warnings []Violation `json:"warnings,omitempty"`
	// Groups, Pairs and ReusedFFs count what was checked.
	Groups    int `json:"groups"`
	Pairs     int `json:"pairs"`
	ReusedFFs int `json:"reused_ffs"`
	// SignoffWNSPS is the functional-mode worst negative slack when
	// Options.Signoff ran (NaN otherwise).
	SignoffWNSPS float64 `json:"signoff_wns_ps"`
	// Deep holds the deep-mode measurement when Options.Deep ran.
	Deep *DeepStats `json:"deep,omitempty"`
}

// OK reports whether the plan certified with zero violations.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// Summary renders a one-line outcome.
func (r *Result) Summary() string {
	if r.OK() {
		return fmt.Sprintf("certified: %d groups, %d pairs, %d reused FFs, 0 violations",
			r.Groups, r.Pairs, r.ReusedFFs)
	}
	return fmt.Sprintf("REJECTED: %d violations across %d groups", len(r.Violations), r.Groups)
}

// Plan verifies a wrapper plan against the die it was planned for. The
// input is the same bundle the optimizer consumed; vo.Thresholds carries
// the contract the plan claims to honor. Violations land in the Result —
// an error return means the verifier itself could not run (missing netlist,
// failed timing re-derivation), not that the plan is bad.
func Plan(in wcm.Input, asn *scan.Assignment, vo Options) (*Result, error) {
	if in.Netlist == nil || in.Lib == nil {
		return nil, fmt.Errorf("verify: netlist and library are required")
	}
	if asn == nil {
		return nil, fmt.Errorf("verify: nil assignment")
	}
	th := vo.Thresholds
	if th != nil {
		eff := th.WithDefaults()
		th = &eff
		if in.Timing == nil {
			return nil, fmt.Errorf("verify: threshold checks need the base timing analysis")
		}
	}
	res := &Result{SignoffWNSPS: math.NaN()}
	c := &checker{
		in:          in,
		n:           in.Netlist,
		lib:         in.Lib,
		th:          th,
		res:         res,
		fanouts:     in.Netlist.Fanouts(),
		sharedGates: make(map[netlist.SignalID]bool),
	}
	ctlTiming, obsTiming, err := c.phaseTimings(asn)
	if err != nil {
		return nil, err
	}
	c.checkControl(asn, ctlTiming)
	c.checkObserve(asn, obsTiming)
	c.checkCoverage(asn)
	res.ReusedFFs = asn.ReusedFFs()
	if vo.Signoff {
		if err := c.signoff(asn); err != nil {
			return nil, err
		}
	}
	if vo.Deep {
		if err := c.deep(asn, vo.DeepBudget); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// checker carries one verification run.
type checker struct {
	in  wcm.Input
	n   *netlist.Netlist
	lib *cells.Library
	th  *wcm.Options
	res *Result

	fanouts [][]netlist.SignalID

	// ffUse maps a reused flip-flop to the first group that claimed it.
	ffUse map[netlist.SignalID]string
	// seenTSV / seenPort track coverage and duplicates.
	seenTSV  map[netlist.SignalID]bool
	seenPort map[int]bool

	// Overlap bookkeeping for deep mode.
	overlapPairs int
	sharedGates  map[netlist.SignalID]bool
}

func (c *checker) add(v Violation) { c.res.Violations = append(c.res.Violations, v) }

func (c *checker) warn(v Violation) { c.res.Warnings = append(c.res.Warnings, v) }

// member is one re-derived clique member: its anchor signal, naive cone,
// physical position and post-bond drive load.
type member struct {
	label  string
	anchor netlist.SignalID
	cone   map[netlist.SignalID]bool
	pos    place.Point
	load2  float64
	isFF   bool
	// sig is the TSV pad (control) or the observed port signal (observe);
	// InvalidSignal for the reused flip-flop member.
	sig netlist.SignalID
}

// phaseTimings re-derives the per-phase timing analyses. The first phase
// planned against the base analysis; the second against the refreshed one
// (base hardware plus the first phase's commitments), which the verifier
// re-computes through the input's RefreshTiming hook — the same
// internal/sta path, driven from the finished plan rather than optimizer
// state. Without thresholds or a refresh hook both sides check against the
// base analysis.
func (c *checker) phaseTimings(asn *scan.Assignment) (ctl, obs *sta.Result, err error) {
	ctl, obs = c.in.Timing, c.in.Timing
	if c.th == nil || c.in.Timing == nil || c.in.RefreshTiming == nil {
		return ctl, obs, nil
	}
	firstInbound := phaseOneInbound(*c.th, c.n)
	var partial *scan.Assignment
	switch {
	case firstInbound && len(asn.Observe) > 0:
		partial = &scan.Assignment{Control: asn.Control}
	case !firstInbound && len(asn.Control) > 0:
		partial = &scan.Assignment{Observe: asn.Observe}
	default:
		return ctl, obs, nil // the second phase has nothing to check
	}
	refreshed, err := c.in.RefreshTiming(partial)
	if err != nil {
		return nil, nil, fmt.Errorf("verify: re-deriving second-phase timing: %w", err)
	}
	if refreshed != nil {
		if firstInbound {
			obs = refreshed
		} else {
			ctl = refreshed
		}
	}
	return ctl, obs, nil
}

// phaseOneInbound re-derives which TSV set the optimizer processed first.
func phaseOneInbound(o wcm.Options, n *netlist.Netlist) bool {
	nIn, nOut := len(n.InboundTSVs()), len(n.OutboundTSVs())
	switch o.Order {
	case wcm.OrderSmallerFirst:
		return nIn < nOut
	case wcm.OrderInboundFirst:
		return true
	case wcm.OrderOutboundFirst:
		return false
	default: // larger-first, the paper's policy
		return nIn >= nOut
	}
}

// claimFF checks reuse validity and cross-group exclusivity.
func (c *checker) claimFF(ff netlist.SignalID, where string) bool {
	if c.ffUse == nil {
		c.ffUse = make(map[netlist.SignalID]string)
	}
	if !c.n.Valid(ff) || c.n.TypeOf(ff) != netlist.GateDFF {
		c.add(Violation{Code: CodeBadReuse, Where: where,
			Detail: fmt.Sprintf("reused control/capture point %d is not a scan flip-flop", ff)})
		return false
	}
	if prev, dup := c.ffUse[ff]; dup {
		c.add(Violation{Code: CodeFFDoubleUse, Where: where, Signal: c.n.NameOf(ff),
			Detail: fmt.Sprintf("flip-flop already reused by %s", prev)})
		return false
	}
	c.ffUse[ff] = where
	return true
}

// checkControl verifies the inbound side: membership, pairwise clique
// conditions over naive fan-out cones, the cap_th budget, the pad-load node
// filter, and the reused flip-flop's launch-slack budget.
func (c *checker) checkControl(asn *scan.Assignment, timing *sta.Result) {
	c.seenTSV = make(map[netlist.SignalID]bool)
	for i, g := range asn.Control {
		where := fmt.Sprintf("control[%d]", i)
		c.res.Groups++
		if len(g.TSVs) == 0 {
			c.add(Violation{Code: CodeEmptyGroup, Where: where, Detail: "group has no TSV members"})
			continue
		}
		var ms []member
		broken := false
		for _, t := range g.TSVs {
			if !c.n.Valid(t) || c.n.TypeOf(t) != netlist.GateTSVIn {
				c.add(Violation{Code: CodeBadMember, Where: where,
					Detail: fmt.Sprintf("member %d is not an inbound TSV pad", t)})
				broken = true
				continue
			}
			if c.seenTSV[t] {
				c.add(Violation{Code: CodeDuplicate, Where: where, Signal: c.n.NameOf(t),
					Detail: "inbound TSV claimed by two groups"})
				broken = true
				continue
			}
			c.seenTSV[t] = true
			m := member{
				label:  c.n.NameOf(t),
				anchor: t,
				cone:   naiveFanoutCone(c.n, t),
				load2:  c.lib.TSVCapFF + c.lib.Of(netlist.GateMux2).InputCapFF,
				sig:    t,
			}
			if c.in.Placement != nil {
				m.pos = c.in.Placement.Coords[t]
			}
			ms = append(ms, m)
		}
		if g.Reused() {
			if c.claimFF(g.ReusedFF, where) {
				m := member{
					label:  c.n.NameOf(g.ReusedFF),
					anchor: g.ReusedFF,
					cone:   naiveFanoutCone(c.n, g.ReusedFF),
					isFF:   true,
					sig:    netlist.InvalidSignal,
				}
				if c.in.Placement != nil {
					m.pos = c.in.Placement.Coords[g.ReusedFF]
				}
				ms = append(ms, m)
			} else {
				broken = true
			}
		}
		if broken {
			continue // malformed groups get no threshold verdicts
		}
		c.checkPairs(where, ms)
		c.checkGroupBudgets(where, ms, true, timing)
	}
}

// checkObserve verifies the outbound side over naive fan-in cones.
func (c *checker) checkObserve(asn *scan.Assignment, timing *sta.Result) {
	c.seenPort = make(map[int]bool)
	for i, g := range asn.Observe {
		where := fmt.Sprintf("observe[%d]", i)
		c.res.Groups++
		if len(g.Ports) == 0 {
			c.add(Violation{Code: CodeEmptyGroup, Where: where, Detail: "group has no port members"})
			continue
		}
		var ms []member
		broken := false
		for _, p := range g.Ports {
			if p < 0 || p >= len(c.n.Outputs) || c.n.Outputs[p].Class != netlist.PortTSVOut {
				c.add(Violation{Code: CodeBadMember, Where: where,
					Detail: fmt.Sprintf("member %d is not an outbound TSV port", p)})
				broken = true
				continue
			}
			if c.seenPort[p] {
				c.add(Violation{Code: CodeDuplicate, Where: where, Signal: c.n.Outputs[p].Name,
					Detail: "outbound TSV port claimed by two groups"})
				broken = true
				continue
			}
			c.seenPort[p] = true
			sig := c.n.Outputs[p].Signal
			m := member{
				label:  c.n.Outputs[p].Name,
				anchor: sig,
				cone:   naiveFaninCone(c.n, sig),
				load2:  c.lib.TSVCapFF + c.lib.Of(netlist.GateXor).InputCapFF,
				sig:    sig,
			}
			if c.in.Placement != nil {
				m.pos = c.in.Placement.Coords[sig]
			}
			ms = append(ms, m)
		}
		if g.Reused() {
			if c.claimFF(g.ReusedFF, where) {
				d := c.n.Gate(g.ReusedFF).Fanin[0]
				m := member{
					label:  c.n.NameOf(g.ReusedFF),
					anchor: d,
					cone:   naiveFaninCone(c.n, d),
					isFF:   true,
					sig:    netlist.InvalidSignal,
				}
				if c.in.Placement != nil {
					m.pos = c.in.Placement.Coords[g.ReusedFF]
				}
				ms = append(ms, m)
			} else {
				broken = true
			}
		}
		if broken {
			continue
		}
		c.checkPairs(where, ms)
		c.checkGroupBudgets(where, ms, false, timing)
	}
}

// checkPairs re-derives the clique property: every pair of members must
// have satisfied Algorithm 1's edge conditions — distinct anchors, cone
// disjointness (or threshold-admitted overlap), and Manhattan distance
// under d_th. Merging only ever contracts existing edges, so a valid final
// clique is pairwise-valid; any pair that fails here could never have been
// grouped by a correct optimizer.
func (c *checker) checkPairs(where string, ms []member) {
	for i := 0; i < len(ms); i++ {
		for j := i + 1; j < len(ms); j++ {
			a, b := &ms[i], &ms[j]
			c.res.Pairs++
			pair := fmt.Sprintf("%s: %s × %s", where, a.label, b.label)
			if a.anchor == b.anchor {
				c.add(Violation{Code: CodeAnchorAlias, Where: where, Signal: c.n.NameOf(a.anchor),
					Detail: fmt.Sprintf("%s and %s anchor on the same signal; XOR folding cancels", a.label, b.label)})
				continue
			}
			shared := maskedOverlap(c.n, a.cone, b.cone, c.sharedGates)
			if shared > 0 {
				c.overlapPairs++
				c.checkOverlap(where, pair, shared)
			}
			if c.th != nil && c.in.Placement != nil && !math.IsInf(c.th.DistThUM, 1) {
				if d := a.pos.ManhattanTo(b.pos); d >= c.th.DistThUM {
					c.add(Violation{Code: CodeDistance, Where: where, Got: d, Limit: c.th.DistThUM,
						Detail: fmt.Sprintf("%s and %s are %.1f µm apart, d_th is %.1f µm", a.label, b.label, d, c.th.DistThUM)})
				}
			}
		}
	}
}

// checkOverlap judges one overlapping pair against the testability budget.
func (c *checker) checkOverlap(where, pair string, shared int) {
	if c.th == nil {
		c.add(Violation{Code: CodeConeOverlap, Where: where, Got: float64(shared),
			Detail: fmt.Sprintf("%s share %d combinational gates but the plan claims no overlap budget", pair, shared)})
		return
	}
	if !c.th.AllowOverlap {
		c.add(Violation{Code: CodeConeOverlap, Where: where, Got: float64(shared),
			Detail: fmt.Sprintf("%s share %d combinational gates with overlap disabled", pair, shared)})
		return
	}
	covLoss, patInc := c.th.Testability.SharePenalty(c.n, shared)
	if !(covLoss < c.th.CovThFrac && patInc < c.th.PatThCount) {
		c.add(Violation{Code: CodeConeOverlap, Where: where,
			Got: covLoss, Limit: c.th.CovThFrac,
			Detail: fmt.Sprintf("%s share %d gates: estimated coverage loss %.4f (cov_th %.4f), pattern increase %d (p_th %d)",
				pair, shared, covLoss, c.th.CovThFrac, patInc, c.th.PatThCount)})
	}
}

// checkGroupBudgets applies the budgets that gate sharing and reuse: the
// accumulated cap_th load, the inbound pad-load node filter, the outbound
// tap-slack node filter, and the reused flip-flop's slack budget. A
// dedicated singleton (one TSV, no flip-flop) carries none of them — that
// is exactly the fallback the optimizer excludes filtered TSVs to.
func (c *checker) checkGroupBudgets(where string, ms []member, inbound bool, timing *sta.Result) {
	if c.th == nil {
		return
	}
	nTSV := 0
	hasFF := false
	var ff *member
	sum := 0.0
	for i := range ms {
		if ms[i].isFF {
			hasFF = true
			ff = &ms[i]
			continue
		}
		nTSV++
		sum += ms[i].load2
	}
	sharedGroup := nTSV >= 2 || hasFF
	if !sharedGroup {
		return
	}
	if !(sum < c.th.CapThFF) {
		c.add(Violation{Code: CodeCapBudget, Where: where, Got: sum, Limit: c.th.CapThFF,
			Detail: fmt.Sprintf("accumulated drive load %.1f fF reaches cap_th %.1f fF", sum, c.th.CapThFF)})
	}
	for i := range ms {
		m := &ms[i]
		if m.isFF {
			continue
		}
		if inbound {
			pinLoad := 0.0
			for _, fo := range c.fanouts[m.sig] {
				pinLoad += c.lib.Of(c.n.TypeOf(fo)).InputCapFF
			}
			if !(pinLoad < c.th.PadCapThFF) {
				c.add(Violation{Code: CodePadLoad, Where: where, Signal: m.label,
					Got: pinLoad, Limit: c.th.PadCapThFF,
					Detail: fmt.Sprintf("pad drives %.1f fF of pins, above the %.1f fF wrapper-mux bound; it needed a dedicated cell", pinLoad, c.th.PadCapThFF)})
			}
		} else if timing != nil {
			slack := timing.SlackPS(m.sig)
			tap := c.tapCostPS(m.sig)
			if !(slack-c.th.SlackThPS > tap) {
				c.add(Violation{Code: CodeTapSlack, Where: where, Signal: m.label,
					Got: slack - c.th.SlackThPS, Limit: tap,
					Detail: fmt.Sprintf("driver slack %.1f ps minus s_th %.1f ps cannot pay the %.1f ps observation tap", slack, c.th.SlackThPS, tap)})
			}
		}
	}
	if hasFF && c.th.Timing == wcm.TimingCapWire && timing != nil {
		c.checkFFSlack(where, ff, inbound, timing)
	}
}

// checkFFSlack re-derives the accurate model's per-flip-flop eligibility:
// control-side reuse hangs one repeater segment plus a mux pin on Q
// (budgeted against SlackSpendFrac of launch slack); observe-side reuse
// inserts a mux into the D path (budgeted against capture slack over s_th).
func (c *checker) checkFFSlack(where string, ff *member, inbound bool, timing *sta.Result) {
	lib := c.lib
	if inbound {
		r := lib.Of(netlist.GateDFF).DriveResKOhm
		deltaPS := r * (lib.DriverWireCapFF(lib.TestBufferDistUM) + lib.Of(netlist.GateMux2).InputCapFF)
		budget := c.th.SlackSpendFrac * timing.SlackPS(ff.anchor)
		if !(deltaPS <= budget) {
			c.add(Violation{Code: CodeControlSlack, Where: where, Signal: ff.label,
				Got: deltaPS, Limit: budget,
				Detail: fmt.Sprintf("test-mux load adds %.1f ps on Q but the slack budget is %.1f ps", deltaPS, budget)})
		}
		return
	}
	mux := lib.Of(netlist.GateMux2)
	muxDelay := mux.IntrinsicPS + mux.DriveResKOhm*lib.Of(netlist.GateDFF).InputCapFF
	budget := timing.SlackPS(ff.anchor) - c.th.SlackThPS
	if !(muxDelay <= budget) {
		c.add(Violation{Code: CodeObserveSlack, Where: where, Signal: ff.label,
			Got: muxDelay, Limit: budget,
			Detail: fmt.Sprintf("capture mux inserts %.1f ps on D but only %.1f ps of slack remains above s_th", muxDelay, budget)})
	}
}

// tapCostPS re-derives the functional delay an observation tap puts on a
// driver under the cap+wire model (zero under capacitance-only, which
// cannot see it).
func (c *checker) tapCostPS(sig netlist.SignalID) float64 {
	if c.th.Timing != wcm.TimingCapWire {
		return 0
	}
	xor := c.lib.Of(netlist.GateXor)
	drive := c.lib.Of(c.n.TypeOf(sig)).DriveResKOhm
	return drive * (xor.InputCapFF + c.lib.DriverWireCapFF(c.lib.TestBufferDistUM))
}

// checkCoverage demands every TSV of the die appears in some group.
func (c *checker) checkCoverage(asn *scan.Assignment) {
	for _, t := range c.n.InboundTSVs() {
		if !c.seenTSV[t] {
			c.add(Violation{Code: CodeUncovered, Signal: c.n.NameOf(t),
				Detail: "inbound TSV has no control point; uncontrollable pre-bond"})
		}
	}
	for _, p := range c.n.OutboundTSVs() {
		if !c.seenPort[p] {
			c.add(Violation{Code: CodeUncovered, Signal: c.n.Outputs[p].Name,
				Detail: "outbound TSV has no capture point; unobservable pre-bond"})
		}
	}
}

// signoff materializes the plan's physical hardware and re-times the
// functional view with test_en tied low — the Table III check, run
// independently of whatever the caller's pipeline reported.
func (c *checker) signoff(asn *scan.Assignment) error {
	if c.in.Placement == nil || c.in.Timing == nil {
		return fmt.Errorf("verify: signoff needs placement and base timing")
	}
	fn, fpl, err := scan.ApplyFunctionalMode(c.n, c.in.Placement, c.lib, asn)
	if err != nil {
		// A plan that cannot even be materialized is broken; the
		// structural checks above normally catch this first.
		c.add(Violation{Code: CodeSignoff, Detail: "plan cannot be materialized: " + err.Error()})
		return nil
	}
	var tie []netlist.SignalID
	if te, ok := fn.SignalByName(scan.TestEnableName); ok {
		tie = append(tie, te)
	}
	timed, err := sta.Analyze(fn, c.lib, sta.Config{
		ClockPS:   c.in.Timing.Config.ClockPS,
		Placement: fpl,
		TieLow:    tie,
	})
	if err != nil {
		return fmt.Errorf("verify: signoff timing: %w", err)
	}
	wns := timed.WNS()
	c.res.SignoffWNSPS = wns
	if wns < 0 {
		c.add(Violation{Code: CodeSignoff, Got: wns, Limit: 0,
			Detail: fmt.Sprintf("functional-mode WNS %.1f ps with the test hardware in place", wns)})
	}
	return nil
}
