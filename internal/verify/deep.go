package verify

import (
	"fmt"

	"wcm3d/internal/atpg"
	"wcm3d/internal/faults"
	"wcm3d/internal/scan"
)

// Deep mode closes the loop on the testability thresholds. The structural
// checks in verify.go judge overlapped cones with the same estimator the
// optimizer used — which certifies consistency but not truth. Deep mode
// instead measures: it applies the plan's test hardware, runs real ATPG on
// the faults inside the shared cones, and compares coverage and pattern
// count against a full-wrap baseline of the same die. Because ATPG on small
// fault subsets is noisy (one fault flipping detection status can swing
// coverage by whole percents against thresholds of fractions of one), the
// findings are advisory Warnings, never certification failures.

// DeepBudget bounds the ATPG effort of a deep verification pass. The zero
// value gets the reduced budget the experiments pipeline uses for sweeps.
type DeepBudget struct {
	// Seed drives the ATPG random phase (default 1).
	Seed int64
	// MaxRandomBlocks, MaxBacktracks, MinNewDetects, MaxDeterministic map
	// onto atpg.Options; zero values take reduced-effort defaults
	// (48 blocks, 6 backtracks, 1 min-detect, 3000 deterministic targets).
	MaxRandomBlocks  int
	MaxBacktracks    int
	MinNewDetects    int
	MaxDeterministic int
}

func (b DeepBudget) options() atpg.Options {
	o := atpg.Options{
		Seed:             b.Seed,
		MaxRandomBlocks:  b.MaxRandomBlocks,
		MaxBacktracks:    b.MaxBacktracks,
		MinNewDetects:    b.MinNewDetects,
		MaxDeterministic: b.MaxDeterministic,
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MaxRandomBlocks == 0 {
		o.MaxRandomBlocks = 48
	}
	if o.MaxBacktracks == 0 {
		o.MaxBacktracks = 6
	}
	if o.MinNewDetects == 0 {
		o.MinNewDetects = 1
	}
	if o.MaxDeterministic == 0 {
		o.MaxDeterministic = 3000
	}
	return o
}

// DeepStats reports what deep mode measured.
type DeepStats struct {
	// OverlapPairs is how many member pairs shared combinational logic.
	OverlapPairs int `json:"overlap_pairs"`
	// SharedGates is the size of the union of all shared cones.
	SharedGates int `json:"shared_gates"`
	// SharedFaults is how many collapsed faults live on those gates.
	SharedFaults int `json:"shared_faults"`
	// PlanCoverage and BaselineCoverage are the measured test coverages
	// of the plan and of a full-wrap baseline on the shared fault list.
	PlanCoverage     float64 `json:"plan_coverage"`
	BaselineCoverage float64 `json:"baseline_coverage"`
	// PlanPatterns and BaselinePatterns are the measured pattern counts.
	PlanPatterns     int `json:"plan_patterns"`
	BaselinePatterns int `json:"baseline_patterns"`
}

// deep measures the testability cost of the plan's cone sharing. It runs
// only when the structural pass recorded overlapping pairs; disjoint plans
// have nothing to measure.
func (c *checker) deep(asn *scan.Assignment, budget DeepBudget) error {
	stats := &DeepStats{OverlapPairs: c.overlapPairs, SharedGates: len(c.sharedGates)}
	c.res.Deep = stats
	if len(c.sharedGates) == 0 {
		return nil
	}
	// Fault list: collapsed stuck-at faults restricted to the shared
	// gates — the only faults whose detection the sharing can plausibly
	// disturb.
	var list []faults.Fault
	for _, f := range faults.CollapsedList(c.n) {
		if c.sharedGates[f.Gate] {
			list = append(list, f)
		}
	}
	stats.SharedFaults = len(list)
	if len(list) == 0 {
		return nil
	}
	opts := budget.options()

	planDie, err := scan.ApplyTestMode(c.n, asn)
	if err != nil {
		return fmt.Errorf("verify: deep: applying plan test mode: %w", err)
	}
	planRes, err := atpg.Run(planDie, list, opts)
	if err != nil {
		return fmt.Errorf("verify: deep: plan ATPG: %w", err)
	}
	baseDie, err := scan.ApplyTestMode(c.n, scan.FullWrap(c.n))
	if err != nil {
		return fmt.Errorf("verify: deep: applying full-wrap baseline: %w", err)
	}
	baseRes, err := atpg.Run(baseDie, list, opts)
	if err != nil {
		return fmt.Errorf("verify: deep: baseline ATPG: %w", err)
	}
	stats.PlanCoverage = planRes.TestCoverage()
	stats.BaselineCoverage = baseRes.TestCoverage()
	stats.PlanPatterns = planRes.PatternCount()
	stats.BaselinePatterns = baseRes.PatternCount()

	if c.th == nil {
		return nil
	}
	// Aggregate bounds: each admitted pair promised < cov_th coverage
	// loss and < p_th extra patterns, so the whole plan should stay under
	// the sum across overlapping pairs.
	covLoss := stats.BaselineCoverage - stats.PlanCoverage
	covBound := c.th.CovThFrac * float64(c.overlapPairs)
	if covLoss >= covBound {
		c.warn(Violation{Code: CodeCoverageLoss, Got: covLoss, Limit: covBound,
			Detail: fmt.Sprintf("measured coverage loss %.4f over %d shared faults exceeds the aggregate budget %.4f (%d overlapping pairs × cov_th %.4f); ATPG noise on small fault lists can trip this — investigate, don't auto-reject",
				covLoss, stats.SharedFaults, covBound, c.overlapPairs, c.th.CovThFrac)})
	}
	patInc := stats.PlanPatterns - stats.BaselinePatterns
	patBound := c.th.PatThCount * c.overlapPairs
	if patInc >= patBound {
		c.warn(Violation{Code: CodePatternGrowth, Got: float64(patInc), Limit: float64(patBound),
			Detail: fmt.Sprintf("measured pattern growth %d exceeds the aggregate budget %d (%d overlapping pairs × p_th %d)",
				patInc, patBound, c.overlapPairs, c.th.PatThCount)})
	}
	return nil
}
