package verify

import (
	"fmt"
	"testing"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
	"wcm3d/internal/wcm"
)

// TestCertifyWCMPlans is the acceptance gate for the optimizer's own test
// shapes: every plan `go test ./internal/wcm` exercises — across worker
// counts 1, 2 and 8 and the main option axes — must certify with zero
// violations. The parallel sweep promises bit-identical plans at every
// worker count; the verifier holds each of them to the full contract
// independently, so a striping bug that slipped past the determinism tests
// would surface here as a violation.
func TestCertifyWCMPlans(t *testing.T) {
	shapes := []struct {
		gates, ffs, in, out int
		seed                int64
	}{
		{300, 12, 8, 8, 1},
		{400, 20, 12, 12, 3},
		{500, 16, 14, 14, 7},
		{400, 6, 12, 12, 9},
	}
	variants := []struct {
		name string
		opts func() wcm.Options
	}{
		{"ours", wcm.DefaultOptions},
		{"no-overlap", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.AllowOverlap = false
			return o
		}},
		{"agrawal", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.Order = wcm.OrderInboundFirst
			o.Timing = wcm.TimingCapOnly
			o.AllowOverlap = false
			return o
		}},
		{"first-edge", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.Merge = wcm.MergeFirstEdge
			return o
		}},
	}
	for _, s := range shapes {
		in := prep(t, s.gates, s.ffs, s.in, s.out, s.seed)
		for _, v := range variants {
			for _, workers := range []int{1, 2, 8} {
				name := fmt.Sprintf("g%d_ff%d_%s_w%d", s.gates, s.ffs, v.name, workers)
				t.Run(name, func(t *testing.T) {
					opts := v.opts()
					opts.Workers = workers
					runAndVerify(t, in, opts)
				})
			}
		}
	}
}

// TestCertifyProfiles certifies the paper's benchmark suite: every Table II
// die profile, prepared exactly as the experiments pipeline prepares it
// (margin-derived clock, full-wrap-projected slacks, cross-phase timing
// refresh), planned with the paper's configuration, then held to its own
// contract — including functional-mode signoff on the small circuits.
// Under -short or the race detector only the b11/b12 profiles run; the
// plain `go test ./...` tier covers all 24.
func TestCertifyProfiles(t *testing.T) {
	profiles := netgen.ITC99Profiles()
	if testing.Short() || raceEnabled {
		profiles = append(netgen.ITC99Circuit("b11"), netgen.ITC99Circuit("b12")...)
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			d, err := experiments.PrepareDie(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			small := p.Gates <= 2000
			for _, sc := range experiments.Scenarios() {
				if !sc.Tight && !small {
					continue // one scenario is enough on the big dies
				}
				res, err := wcm.Run(d.Input(), experiments.OurOptions(d, sc))
				if err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
				vres, err := Plan(d.Input(), res.Assignment, Options{
					Thresholds: &res.Options,
					Signoff:    small,
				})
				if err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
				for _, v := range vres.Violations {
					t.Errorf("%s: %s", sc.Name, v)
				}
				if vres.Groups == 0 {
					t.Errorf("%s: verifier saw no groups", sc.Name)
				}
			}
		})
	}
}
