package verify

import (
	"fmt"
	"testing"

	"wcm3d/internal/wcm"
)

// TestCertifyWCMPlans is the acceptance gate for the optimizer's own test
// shapes: every plan `go test ./internal/wcm` exercises — across worker
// counts 1, 2 and 8 and the main option axes — must certify with zero
// violations. The parallel sweep promises bit-identical plans at every
// worker count; the verifier holds each of them to the full contract
// independently, so a striping bug that slipped past the determinism tests
// would surface here as a violation.
func TestCertifyWCMPlans(t *testing.T) {
	shapes := []struct {
		gates, ffs, in, out int
		seed                int64
	}{
		{300, 12, 8, 8, 1},
		{400, 20, 12, 12, 3},
		{500, 16, 14, 14, 7},
		{400, 6, 12, 12, 9},
	}
	variants := []struct {
		name string
		opts func() wcm.Options
	}{
		{"ours", wcm.DefaultOptions},
		{"no-overlap", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.AllowOverlap = false
			return o
		}},
		{"agrawal", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.Order = wcm.OrderInboundFirst
			o.Timing = wcm.TimingCapOnly
			o.AllowOverlap = false
			return o
		}},
		{"first-edge", func() wcm.Options {
			o := wcm.DefaultOptions()
			o.Merge = wcm.MergeFirstEdge
			return o
		}},
	}
	for _, s := range shapes {
		in := prep(t, s.gates, s.ffs, s.in, s.out, s.seed)
		for _, v := range variants {
			for _, workers := range []int{1, 2, 8} {
				name := fmt.Sprintf("g%d_ff%d_%s_w%d", s.gates, s.ffs, v.name, workers)
				t.Run(name, func(t *testing.T) {
					opts := v.opts()
					opts.Workers = workers
					runAndVerify(t, in, opts)
				})
			}
		}
	}
}
