package verify

import (
	"fmt"
	"math"

	"wcm3d/internal/cells"
	"wcm3d/internal/netlist"
	"wcm3d/internal/place"
	"wcm3d/internal/scan"
	"wcm3d/internal/wcm"
)

// The oracle is the differential half of the harness: an exhaustive solver
// for the same two-phase WCM problem the heuristic attacks greedily. It
// enumerates every set partition of a phase's TSV items (restricted-growth
// recursion with feasibility pruning), scores each with a maximum bipartite
// matching of eligible flip-flops onto blocks, and keeps the cheapest. On
// dies small enough to enumerate it yields the true per-phase optimum, so
//
//	oracle cells ≤ heuristic cells
//
// is a theorem whenever both face the same item set and flip-flop
// availability — a die where the heuristic beats the oracle indicates a bug
// in one of them, and any gap the other way measures the greedy
// partitioner's real suboptimality.

// DefaultOracleMaxItems bounds the per-phase item count the oracle will
// enumerate. Bell(10) ≈ 1.2e5 partitions is comfortably exhaustive;
// anything bigger risks minutes per die.
const DefaultOracleMaxItems = 10

// OracleOptions tunes the exhaustive solver.
type OracleOptions struct {
	// MaxItems caps the per-phase item count (0 = DefaultOracleMaxItems).
	// Oracle returns an error beyond it rather than silently degrading.
	MaxItems int
	// ReplayConsumption, when non-nil, overrides which flip-flops the
	// first phase consumes: instead of removing the oracle's own matched
	// flip-flops before the second phase, the listed ones are removed.
	// Differential tests pass the heuristic's first-phase reuse set so the
	// second phase's optimum is computed under the exact availability the
	// heuristic faced — making oracle ≤ heuristic a per-phase theorem
	// instead of an expectation about flip-flop abundance.
	ReplayConsumption []netlist.SignalID
}

// OraclePhase reports one phase's optimum.
type OraclePhase struct {
	// Inbound reports which TSV set the phase solved.
	Inbound bool
	// Items and Excluded count graph-admitted vs filtered TSVs.
	Items    int
	Excluded int
	// Blocks is the optimal partition's block count; Reused how many
	// blocks a flip-flop covers.
	Blocks int
	Reused int
	// Cells is the phase's additional wrapper cells:
	// Blocks - Reused + Excluded.
	Cells int
}

// OracleResult is the exhaustive solver's plan.
type OracleResult struct {
	// Assignment is the optimal plan in the same schema the heuristic
	// emits, so verify.Plan can certify it.
	Assignment *scan.Assignment
	// ReusedFFs and AdditionalCells total across phases.
	ReusedFFs       int
	AdditionalCells int
	// Phases holds per-phase detail in processing order.
	Phases [2]OraclePhase
}

// Oracle exhaustively solves the WCM instance. The input bundle must carry
// a nil RefreshTiming: the oracle prices both phases against the base
// analysis, and comparing it against a heuristic run that re-timed between
// phases would misattribute the difference. Thresholds follow opts exactly
// as wcm.Run interprets them.
func Oracle(in wcm.Input, opts wcm.Options, oo OracleOptions) (*OracleResult, error) {
	opts = opts.WithDefaults()
	if in.Netlist == nil || in.Lib == nil || in.Timing == nil {
		return nil, fmt.Errorf("verify: oracle needs netlist, library and timing")
	}
	if in.RefreshTiming != nil {
		return nil, fmt.Errorf("verify: oracle requires RefreshTiming == nil (both phases price against the base analysis)")
	}
	maxItems := oo.MaxItems
	if maxItems == 0 {
		maxItems = DefaultOracleMaxItems
	}
	n := in.Netlist
	available := make(map[netlist.SignalID]bool, len(n.FlipFlops()))
	for _, ff := range n.FlipFlops() {
		available[ff] = true
	}

	res := &OracleResult{Assignment: &scan.Assignment{}}
	firstInbound := phaseOneInbound(opts, n)
	order := [2]bool{firstInbound, !firstInbound}
	for pi, inbound := range order {
		ph, usedFFs, err := oraclePhase(in, opts, inbound, available, maxItems, res.Assignment)
		if err != nil {
			return nil, err
		}
		res.Phases[pi] = ph
		if pi == 0 {
			consumed := usedFFs
			if oo.ReplayConsumption != nil {
				consumed = oo.ReplayConsumption
			}
			for _, ff := range consumed {
				available[ff] = false
			}
		}
	}
	res.Assignment.BufferedRouting = opts.Timing == wcm.TimingCapWire
	res.ReusedFFs = res.Assignment.ReusedFFs()
	res.AdditionalCells = res.Assignment.AdditionalCells()
	return res, nil
}

// oracleMember is one node of a phase's sharing problem: a TSV item or an
// eligible flip-flop.
type oracleMember struct {
	// sig is the anchored signal (pad, port driver, flip-flop Q or D
	// driver); port the outbound port index (-1 otherwise).
	sig    netlist.SignalID
	anchor netlist.SignalID
	port   int
	cone   map[netlist.SignalID]bool
	pos    place.Point
	load   float64
}

// oraclePhase solves one TSV set exhaustively and appends the optimal
// groups to asn.
func oraclePhase(in wcm.Input, opts wcm.Options, inbound bool, available map[netlist.SignalID]bool, maxItems int, asn *scan.Assignment) (OraclePhase, []netlist.SignalID, error) {
	n, lib := in.Netlist, in.Lib
	ph := OraclePhase{Inbound: inbound}

	// Item collection and node filters — the same admission rules wcm.Run
	// applies, recomputed from the paper's formulas over naive cones.
	var items, excluded []oracleMember
	if inbound {
		muxCap := lib.Of(netlist.GateMux2).InputCapFF
		for _, t := range n.InboundTSVs() {
			it := oracleMember{sig: t, anchor: t, port: -1}
			pinLoad := 0.0
			for _, fo := range n.Fanouts()[t] {
				pinLoad += lib.Of(n.TypeOf(fo)).InputCapFF
			}
			if pinLoad >= opts.PadCapThFF {
				excluded = append(excluded, it)
				continue
			}
			it.cone = naiveFanoutCone(n, t)
			it.load = lib.TSVCapFF + muxCap
			if in.Placement != nil {
				it.pos = in.Placement.Coords[t]
			}
			items = append(items, it)
		}
	} else {
		xorCap := lib.Of(netlist.GateXor).InputCapFF
		for _, p := range n.OutboundTSVs() {
			sig := n.Outputs[p].Signal
			it := oracleMember{sig: sig, anchor: sig, port: p}
			if !(in.Timing.SlackPS(sig)-opts.SlackThPS > oracleTapCostPS(n, lib, opts, sig)) {
				excluded = append(excluded, it)
				continue
			}
			it.cone = naiveFaninCone(n, sig)
			it.load = lib.TSVCapFF + xorCap
			if in.Placement != nil {
				it.pos = in.Placement.Coords[sig]
			}
			items = append(items, it)
		}
	}
	ph.Items, ph.Excluded = len(items), len(excluded)
	if len(items) > maxItems {
		return ph, nil, fmt.Errorf("verify: oracle: %d items exceed the exhaustive bound %d", len(items), maxItems)
	}

	// Eligible flip-flops under the phase's timing admission.
	var ffs []netlist.SignalID
	var ffMembers []oracleMember
	for _, ff := range n.FlipFlops() {
		if !available[ff] || !oracleFFEligible(in, opts, inbound, ff) {
			continue
		}
		m := oracleMember{sig: ff, anchor: ff, port: -1}
		if inbound {
			m.cone = naiveFanoutCone(n, ff)
		} else {
			m.anchor = n.Gate(ff).Fanin[0]
			m.cone = naiveFaninCone(n, m.anchor)
		}
		if in.Placement != nil {
			m.pos = in.Placement.Coords[ff]
		}
		ffs = append(ffs, ff)
		ffMembers = append(ffMembers, m)
	}

	// Pairwise feasibility matrices: Algorithm 1's edge conditions.
	feas := make([][]bool, len(items))
	for i := range items {
		feas[i] = make([]bool, len(items))
	}
	for i := range items {
		for j := i + 1; j < len(items); j++ {
			ok := oraclePairOK(in, opts, &items[i], &items[j])
			feas[i][j], feas[j][i] = ok, ok
		}
	}
	ffFeas := make([][]bool, len(ffMembers))
	for f := range ffMembers {
		ffFeas[f] = make([]bool, len(items))
		for i := range items {
			ffFeas[f][i] = oraclePairOK(in, opts, &ffMembers[f], &items[i])
		}
	}

	best := solveExhaustive(items, feas, ffFeas, opts.CapThFF)

	// Emit the optimal plan: matched blocks reuse their flip-flop,
	// unmatched blocks and every excluded TSV get dedicated cells.
	var used []netlist.SignalID
	emit := func(ff netlist.SignalID, members []oracleMember) {
		if inbound {
			g := scan.ControlGroup{ReusedFF: ff}
			for i := range members {
				g.TSVs = append(g.TSVs, members[i].sig)
			}
			asn.Control = append(asn.Control, g)
			return
		}
		g := scan.ObserveGroup{ReusedFF: ff}
		for i := range members {
			g.Ports = append(g.Ports, members[i].port)
		}
		asn.Observe = append(asn.Observe, g)
	}
	for b, block := range best.blocks {
		ff := netlist.InvalidSignal
		if f := best.matchOf[b]; f >= 0 {
			ff = ffs[f]
			used = append(used, ff)
			ph.Reused++
		}
		ms := make([]oracleMember, 0, len(block))
		for _, i := range block {
			ms = append(ms, items[i])
		}
		emit(ff, ms)
	}
	for i := range excluded {
		emit(netlist.InvalidSignal, excluded[i:i+1])
	}
	ph.Blocks = len(best.blocks)
	ph.Cells = ph.Blocks - ph.Reused + ph.Excluded
	return ph, used, nil
}

// oraclePairOK re-derives one edge of Algorithm 1's sharing graph between
// two members (TSV×TSV or flip-flop×TSV).
func oraclePairOK(in wcm.Input, opts wcm.Options, a, b *oracleMember) bool {
	if a.anchor == b.anchor {
		return false // XOR folding of a signal with itself cancels
	}
	if !math.IsInf(opts.DistThUM, 1) && in.Placement != nil {
		if a.pos.ManhattanTo(b.pos) >= opts.DistThUM {
			return false
		}
	}
	if !(a.load+b.load < opts.CapThFF) {
		return false
	}
	shared := maskedOverlap(in.Netlist, a.cone, b.cone, nil)
	if shared == 0 {
		return true
	}
	if !opts.AllowOverlap {
		return false
	}
	covLoss, patInc := opts.Testability.SharePenalty(in.Netlist, shared)
	return covLoss < opts.CovThFrac && patInc < opts.PatThCount
}

// solveExhaustive enumerates set partitions of the items by restricted
// growth (item k joins an existing block or opens a new one), pruning
// infeasible blocks as they grow, and scores each complete partition with a
// maximum matching of flip-flops onto blocks. It returns the first
// partition attaining the minimum blocks-minus-matched cost — the recursion
// order is fixed, so the result is deterministic.
type oracleBest struct {
	blocks  [][]int
	matchOf []int // block index -> flip-flop index or -1
	cells   int
}

func solveExhaustive(items []oracleMember, feas, ffFeas [][]bool, capTh float64) oracleBest {
	best := oracleBest{cells: len(items) + 1}
	if len(items) == 0 {
		best.cells = 0
		return best
	}
	var blocks [][]int
	var loads []float64
	var recurse func(k int)
	recurse = func(k int) {
		if k == len(items) {
			matched, matchOf := matchFFs(blocks, loads, ffFeas, capTh)
			cells := len(blocks) - matched
			if cells < best.cells {
				best.cells = cells
				best.blocks = make([][]int, len(blocks))
				for b := range blocks {
					best.blocks[b] = append([]int(nil), blocks[b]...)
				}
				best.matchOf = matchOf
			}
			return
		}
		for b := range blocks {
			if !(loads[b]+items[k].load < capTh) {
				continue
			}
			ok := true
			for _, m := range blocks[b] {
				if !feas[m][k] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			blocks[b] = append(blocks[b], k)
			loads[b] += items[k].load
			recurse(k + 1)
			loads[b] -= items[k].load
			blocks[b] = blocks[b][:len(blocks[b])-1]
		}
		blocks = append(blocks, []int{k})
		loads = append(loads, items[k].load)
		recurse(k + 1)
		blocks = blocks[:len(blocks)-1]
		loads = loads[:len(loads)-1]
	}
	recurse(0)
	return best
}

// matchFFs computes a maximum bipartite matching of eligible flip-flops
// onto blocks (Kuhn's augmenting paths). A flip-flop may cover a block when
// it is pairwise-feasible with every member and the block's accumulated
// load fits cap_th (the merge that attaches the flip-flop re-checks the
// budget even for singleton blocks).
func matchFFs(blocks [][]int, loads []float64, ffFeas [][]bool, capTh float64) (int, []int) {
	cand := make([][]int, len(blocks))
	for b := range blocks {
		if !(loads[b] < capTh) {
			continue
		}
		for f := range ffFeas {
			ok := true
			for _, m := range blocks[b] {
				if !ffFeas[f][m] {
					ok = false
					break
				}
			}
			if ok {
				cand[b] = append(cand[b], f)
			}
		}
	}
	matchOf := make([]int, len(blocks))
	for b := range matchOf {
		matchOf[b] = -1
	}
	ffOf := make(map[int]int) // flip-flop index -> block index
	var try func(b int, seen map[int]bool) bool
	try = func(b int, seen map[int]bool) bool {
		for _, f := range cand[b] {
			if seen[f] {
				continue
			}
			seen[f] = true
			if prev, taken := ffOf[f]; !taken || try(prev, seen) {
				ffOf[f] = b
				matchOf[b] = f
				return true
			}
		}
		return false
	}
	matched := 0
	for b := range blocks {
		if try(b, make(map[int]bool)) {
			matched++
		}
	}
	return matched, matchOf
}

// oracleTapCostPS mirrors the optimizer's functional tap cost.
func oracleTapCostPS(n *netlist.Netlist, lib *cells.Library, opts wcm.Options, sig netlist.SignalID) float64 {
	if opts.Timing != wcm.TimingCapWire {
		return 0
	}
	xor := lib.Of(netlist.GateXor)
	drive := lib.Of(n.TypeOf(sig)).DriveResKOhm
	return drive * (xor.InputCapFF + lib.DriverWireCapFF(lib.TestBufferDistUM))
}

// oracleFFEligible mirrors the optimizer's per-flip-flop timing admission.
func oracleFFEligible(in wcm.Input, opts wcm.Options, inbound bool, ff netlist.SignalID) bool {
	if opts.Timing != wcm.TimingCapWire {
		return true
	}
	lib := in.Lib
	if inbound {
		r := lib.Of(netlist.GateDFF).DriveResKOhm
		deltaPS := r * (lib.DriverWireCapFF(lib.TestBufferDistUM) + lib.Of(netlist.GateMux2).InputCapFF)
		return deltaPS <= opts.SlackSpendFrac*in.Timing.SlackPS(ff)
	}
	d := in.Netlist.Gate(ff).Fanin[0]
	mux := lib.Of(netlist.GateMux2)
	muxDelay := mux.IntrinsicPS + mux.DriveResKOhm*lib.Of(netlist.GateDFF).InputCapFF
	return muxDelay <= in.Timing.SlackPS(d)-opts.SlackThPS
}
