package verify

import (
	"math"
	"testing"

	"wcm3d/internal/cells"
	"wcm3d/internal/netgen"
	"wcm3d/internal/place"
	"wcm3d/internal/sta"
	"wcm3d/internal/wcm"
)

// FuzzPlan is the run→verify harness: generate a random die from the
// fuzzed shape, plan it under fuzzed options, and demand the independent
// verifier certifies the plan with zero violations. Any counterexample is a
// real bug in the optimizer, the verifier, or their shared understanding of
// the paper's constraints — go test replays the seeded corpus under
// testdata/fuzz/FuzzPlan (one entry per Table II die profile, scaled to
// fuzz-sized dies) on every plain run; `go test -fuzz=FuzzPlan` explores.
func FuzzPlan(f *testing.F) {
	f.Add(300, 12, 8, 8, int64(1), int64(0))
	f.Add(400, 6, 12, 12, int64(9), int64(1))   // inbound-first
	f.Add(500, 16, 14, 14, int64(7), int64(12)) // cap-only, overlap off
	f.Add(250, 40, 5, 9, int64(3), int64(32))   // finite d_th
	f.Add(350, 10, 9, 3, int64(5), int64(64))   // tight clock
	f.Fuzz(func(t *testing.T, gates, ffs, tin, tout int, seed, flags int64) {
		// Clamp the shape to something generable and affordable; the
		// clamps keep every fuzzed input meaningful instead of rejected.
		gates = 16 + abs(gates)%1185
		ffs = abs(ffs) % 64
		tin = abs(tin) % 25
		tout = abs(tout) % 25
		n, err := netgen.Random(netgen.RandomOptions{
			Gates: gates, FFs: ffs, PIs: 4, POs: 2,
			InboundTSVs: tin, OutboundTSVs: tout, Seed: seed,
		})
		if err != nil {
			t.Skip(err) // unrealizable shape, not a bug
		}
		lib := cells.Default45nm()
		pl, err := place.Place(n, place.Options{Seed: seed})
		if err != nil {
			t.Fatalf("place: %v", err)
		}
		base, err := sta.Analyze(n, lib, sta.Config{ClockPS: 1e5, Placement: pl})
		if err != nil {
			t.Fatalf("sta: %v", err)
		}
		in := wcm.Input{Netlist: n, Lib: lib, Placement: pl, Timing: base}

		opts := wcm.DefaultOptions()
		switch flags & 3 {
		case 1:
			opts.Order = wcm.OrderInboundFirst
		case 2:
			opts.Order = wcm.OrderOutboundFirst
		case 3:
			opts.Order = wcm.OrderSmallerFirst
		}
		if flags&4 != 0 {
			opts.Timing = wcm.TimingCapOnly
		}
		if flags&8 != 0 {
			opts.AllowOverlap = false
		}
		if flags&16 != 0 {
			opts.Merge = wcm.MergeFirstEdge
		}
		if flags&32 != 0 {
			opts.DistThUM = 300
		} else {
			opts.DistThUM = math.Inf(1)
		}
		if flags&64 != 0 {
			// Barely-feasible clock: slack is scarce, the timing
			// admission rules actually bite.
			tight, err := sta.Analyze(n, lib, sta.Config{
				ClockPS: base.CriticalPathPS() + 50, Placement: pl,
			})
			if err != nil {
				t.Fatalf("tight sta: %v", err)
			}
			in.Timing = tight
			opts.SlackThPS = 20
		}
		if flags&128 != 0 {
			opts.SlackSpendFrac = math.Inf(1)
		}
		opts.Workers = 1

		res, err := wcm.Run(in, opts)
		if err != nil {
			t.Fatalf("wcm.Run(%d gates, %d ffs, %d/%d tsvs, flags %d): %v",
				gates, ffs, tin, tout, flags, err)
		}
		vres, err := Plan(in, res.Assignment, Options{Thresholds: &res.Options})
		if err != nil {
			t.Fatalf("verify: %v", err)
		}
		for _, v := range vres.Violations {
			t.Errorf("violation: %s", v)
		}
		if t.Failed() {
			t.Fatalf("uncertified plan on %d gates, %d ffs, %d/%d tsvs, seed %d, flags %d",
				gates, ffs, tin, tout, seed, flags)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		// Avoid the MinInt overflow; any fixed positive value keeps the
		// clamp total.
		if v == -v {
			return 1
		}
		return -v
	}
	return v
}
