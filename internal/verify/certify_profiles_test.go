package verify_test

import (
	"testing"

	"wcm3d/internal/experiments"
	"wcm3d/internal/netgen"
	"wcm3d/internal/verify"
	"wcm3d/internal/wcm"
)

// TestCertifyProfiles certifies the paper's benchmark suite: every Table II
// die profile, prepared exactly as the experiments pipeline prepares it
// (margin-derived clock, full-wrap-projected slacks, cross-phase timing
// refresh), planned with the paper's configuration, then held to its own
// contract — including functional-mode signoff on the small circuits.
// Under -short or the race detector only the b11/b12 profiles run; the
// plain `go test ./...` tier covers all 24.
func TestCertifyProfiles(t *testing.T) {
	profiles := netgen.ITC99Profiles()
	if testing.Short() || raceEnabled {
		profiles = append(netgen.ITC99Circuit("b11"), netgen.ITC99Circuit("b12")...)
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			d, err := experiments.PrepareDie(p, 1)
			if err != nil {
				t.Fatal(err)
			}
			small := p.Gates <= 2000
			for _, sc := range experiments.Scenarios() {
				if !sc.Tight && !small {
					continue // one scenario is enough on the big dies
				}
				res, err := wcm.Run(d.Input(), experiments.OurOptions(d, sc))
				if err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
				vres, err := verify.Plan(d.Input(), res.Assignment, verify.Options{
					Thresholds: &res.Options,
					Signoff:    small,
				})
				if err != nil {
					t.Fatalf("%s: %v", sc.Name, err)
				}
				for _, v := range vres.Violations {
					t.Errorf("%s: %s", sc.Name, v)
				}
				if vres.Groups == 0 {
					t.Errorf("%s: verifier saw no groups", sc.Name)
				}
			}
		})
	}
}
