//go:build !race

package verify_test

const raceEnabled = false
