package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wcm3d"
	"wcm3d/internal/service"
)

// One small real die shared by every test node's Prepare hook: the tests
// exercise routing, stealing and liveness, not die generation.
var (
	dieOnce sync.Once
	dieVal  *wcm3d.Die
	dieErr  error
)

func testDie(t *testing.T) *wcm3d.Die {
	t.Helper()
	dieOnce.Do(func() {
		var p wcm3d.Profile
		p, dieErr = wcm3d.ProfileByName("b11/0")
		if dieErr == nil {
			dieVal, dieErr = wcm3d.PrepareDie(p, 1)
		}
	})
	if dieErr != nil {
		t.Fatal(dieErr)
	}
	return dieVal
}

type node struct {
	id  string
	url string
	svc *service.Service
	cl  *Cluster
	srv *http.Server
}

// kill tears one node down hard (listener gone, loops stopped) without
// touching the others — the "peer died" scenario.
func (n *node) kill() {
	n.srv.Close()
	n.cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	n.svc.Shutdown(ctx)
}

// startNodes boots an in-process loopback cluster of count nodes. mkCfg
// builds each node's service config (the cluster fields are wired here);
// tweak adjusts the cluster options per node before New.
func startNodes(t *testing.T, count int, mkCfg func(i int) service.Config, tweak func(o *Options)) []*node {
	t.Helper()
	nodes := make([]*node, count)
	peers := make([]Peer, count)
	for i := range nodes {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("n%d", i+1)
		url := "http://" + lis.Addr().String()
		peers[i] = Peer{ID: id, URL: url}
		nodes[i] = &node{id: id, url: url}
		nodes[i].srv = &http.Server{}
		go func(n *node, l net.Listener) {
			n.srv.Serve(l)
		}(nodes[i], lis)
	}
	for i, n := range nodes {
		n.svc = service.New(mkCfg(i))
		opts := Options{
			Self:          n.id,
			Peers:         peers,
			Svc:           n.svc,
			ProbeInterval: 50 * time.Millisecond,
			DeadAfter:     3,
			HTTPTimeout:   2 * time.Second,
		}
		if tweak != nil {
			tweak(&opts)
		}
		cl, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		n.cl = cl
		n.svc.AttachCluster(cl)
		n.srv.Handler = n.svc.Handler()
		t.Cleanup(n.kill)
	}
	return nodes
}

// submitFollowing posts a job and follows any ownership redirect,
// returning the accepted status and the node URL that took the job.
func submitFollowing(t *testing.T, startURL, body string) (service.JobStatus, string) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(startURL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d err %v", resp.StatusCode, err)
	}
	return st, "http://" + resp.Request.URL.Host
}

func waitTerminal(t *testing.T, nodeURL, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	client := &http.Client{Timeout: 5 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(nodeURL + "/v1/jobs/" + id)
		if err == nil {
			var st service.JobStatus
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			switch st.State {
			case service.StateDone, service.StateFailed, service.StateCanceled:
				return st
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s on %s never finished", id, nodeURL)
	return service.JobStatus{}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("n1=http://10.0.0.1:8080/, n2=http://10.0.0.2:8080")
	if err != nil || len(peers) != 2 || peers[0].URL != "http://10.0.0.1:8080" {
		t.Fatalf("ParsePeers: %+v, %v", peers, err)
	}
	for _, bad := range []string{"", "n1", "n1=", "=x", "n1=not a url", "n1=u1,n1=u2", "n1=/relative"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Fatalf("ParsePeers(%q) accepted", bad)
		}
	}
}

// TestClusterOwnership: with stealing off, every distinct die key is
// prepared on exactly one node — its ring owner — no matter where the
// submission first landed.
func TestClusterOwnership(t *testing.T) {
	die := testDie(t)
	nodes := startNodes(t, 3, func(i int) service.Config {
		return service.Config{
			Workers: 2, QueueDepth: 32,
			Prepare: func(ctx context.Context, spec service.DieSpec) (*wcm3d.Die, error) {
				return die, nil
			},
		}
	}, nil) // StealInterval 0: ownership only

	const seeds = 12
	type placed struct {
		id, url string
	}
	var jobs []placed
	for s := 1; s <= seeds; s++ {
		// Spray submissions across entry nodes; redirects concentrate them
		// on the owners.
		entry := nodes[s%3].url
		st, owner := submitFollowing(t, entry, fmt.Sprintf(`{"profile":"b11/0","seed":%d}`, s))
		jobs = append(jobs, placed{st.ID, owner})
	}
	for _, p := range jobs {
		if st := waitTerminal(t, p.url, p.id); st.State != service.StateDone {
			t.Fatalf("job %s on %s: %q", p.id, p.url, st.State)
		}
	}

	var totalMisses int64
	for _, n := range nodes {
		m := n.svc.Metrics().CacheMisses.Load()
		totalMisses += m
		// Every preparation on a node must be for a key it owns: the job
		// count equals the miss count (each owned key submitted once).
		if got := int64(len(n.svc.Jobs())); got != m {
			t.Fatalf("node %s ran %d jobs but prepared %d dies — ran a non-owned key", n.id, got, m)
		}
	}
	if totalMisses != seeds {
		t.Fatalf("fleet prepared %d dies for %d distinct keys — ownership violated", totalMisses, seeds)
	}
	// The routing view agrees across nodes: each key has one owner.
	for s := 1; s <= seeds; s++ {
		owners := make(map[string]bool)
		for _, n := range nodes {
			url, _ := n.cl.Route("b11/0", int64(s))
			owners[url] = true
		}
		if len(owners) != 1 {
			t.Fatalf("seed %d: nodes disagree on owner: %v", s, owners)
		}
	}
}

// TestClusterStealing: an overloaded node's queue drains through idle
// peers, and every stolen job still reaches done exactly once on the
// victim's table.
func TestClusterStealing(t *testing.T) {
	die := testDie(t)
	nodes := startNodes(t, 3, func(i int) service.Config {
		cfg := service.Config{
			Workers: 2, QueueDepth: 64,
			Prepare: func(ctx context.Context, spec service.DieSpec) (*wcm3d.Die, error) {
				time.Sleep(30 * time.Millisecond) // make jobs slow enough to steal
				return die, nil
			},
		}
		if i == 0 {
			cfg.Workers = 1 // the victim: one slow worker, deep queue
		}
		return cfg
	}, func(o *Options) {
		o.StealInterval = 25 * time.Millisecond
		o.StealBatch = 2
	})

	victim := nodes[0]
	const jobs = 12
	var ids []string
	for s := 1; s <= jobs; s++ {
		// Submit directly to the victim's service: routing is beside the
		// point here, queue pressure is.
		st, err := victim.svc.Submit(service.JobRequest{Profile: "b11/0", Seed: int64(s)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, victim.url, id); st.State != service.StateDone {
			t.Fatalf("job %s: %q", id, st.State)
		}
	}
	if stolen := victim.svc.Metrics().JobsStolen.Load(); stolen == 0 {
		t.Fatal("no jobs were stolen from the loaded node")
	}
	// Exactly once: done count on the victim covers every job, no extras.
	if done := victim.svc.Metrics().JobsDone.Load(); done != jobs {
		t.Fatalf("victim JobsDone = %d, want %d", done, jobs)
	}
}

// TestClusterDeadThiefReclaim: jobs stolen by a peer that dies before
// reporting back are reclaimed and finish locally.
func TestClusterDeadThiefReclaim(t *testing.T) {
	die := testDie(t)
	release := make(chan struct{})
	var once sync.Once
	nodes := startNodes(t, 2, func(i int) service.Config {
		cfg := service.Config{Workers: 1, QueueDepth: 32}
		if i == 0 {
			// Victim: worker wedges until released, so submissions pile up
			// in the queue where the thief can take them.
			cfg.Prepare = func(ctx context.Context, spec service.DieSpec) (*wcm3d.Die, error) {
				select {
				case <-release:
					return die, nil
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		} else {
			// Thief: accepts stolen jobs but never finishes them.
			cfg.Prepare = func(ctx context.Context, spec service.DieSpec) (*wcm3d.Die, error) {
				<-ctx.Done()
				return nil, ctx.Err()
			}
		}
		return cfg
	}, func(o *Options) {
		o.StealInterval = 25 * time.Millisecond
		o.StealBatch = 4
	})
	defer once.Do(func() { close(release) })

	victim, thief := nodes[0], nodes[1]
	var ids []string
	for s := 1; s <= 5; s++ {
		st, err := victim.svc.Submit(service.JobRequest{Profile: "b11/0", Seed: int64(s)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	// Wait until the thief has taken something.
	deadline := time.Now().Add(10 * time.Second)
	for victim.svc.Metrics().JobsStolen.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("thief never stole")
		}
		time.Sleep(10 * time.Millisecond)
	}
	thief.kill()

	// The victim declares the thief dead and reclaims; release the worker
	// so the backlog (reclaimed jobs included) drains locally.
	deadline = time.Now().Add(10 * time.Second)
	for victim.svc.Metrics().JobsReclaimed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim never reclaimed from the dead thief")
		}
		time.Sleep(10 * time.Millisecond)
	}
	once.Do(func() { close(release) })
	for _, id := range ids {
		if st := waitTerminal(t, victim.url, id); st.State != service.StateDone {
			t.Fatalf("job %s: %q", id, st.State)
		}
	}
}
