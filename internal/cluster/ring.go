// Package cluster implements static-membership clustering for the wcmd
// daemon: consistent-hash ownership of prepared-die keys (so each die is
// generated and cached on exactly one node), liveness probing of peers,
// and pull-based work-stealing of queued jobs. The service core stays
// unaware of any of this — it sees the package only through the
// service.ClusterView interface.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over node ids. Each node holds vnodes
// virtual tokens so ownership spreads evenly even with two or three
// nodes; lookups walk clockwise from the key's hash to the first token
// whose node passes the liveness filter, which is what makes ownership
// fail over automatically when a node dies and snap back when it returns.
type ring struct {
	vnodes int
	tokens []token // sorted by hash
}

type token struct {
	hash uint64
	node string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone leaves the high bits of short, similar strings badly
	// mixed (every "n1#i" token lands in the same half of the space,
	// collapsing the ring onto one node); a splitmix64-style avalanche
	// finalizer spreads tokens and keys over the full uint64 range.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds the ring for a fixed node set. Membership is static for
// the life of the process (the -peers flag), so the token table never
// changes after construction and lookups need no locking.
func newRing(nodes []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{vnodes: vnodes}
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.tokens = append(r.tokens, token{hash: hash64(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.tokens, func(a, b int) bool {
		ta, tb := r.tokens[a], r.tokens[b]
		if ta.hash != tb.hash {
			return ta.hash < tb.hash
		}
		return ta.node < tb.node
	})
	return r
}

// lookup returns the node owning key under the current liveness view:
// the first clockwise token whose node alive() accepts. With every node
// dead it falls back to the raw owner so the result is never empty.
func (r *ring) lookup(key string, alive func(string) bool) string {
	if len(r.tokens) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].hash >= h })
	for i := 0; i < len(r.tokens); i++ {
		t := r.tokens[(start+i)%len(r.tokens)]
		if alive == nil || alive(t.node) {
			return t.node
		}
	}
	return r.tokens[start%len(r.tokens)].node
}

// tokensPerNode reports how many tokens each node holds — the shard map
// served at GET /v1/cluster.
func (r *ring) tokensPerNode() map[string]int {
	m := make(map[string]int)
	for _, t := range r.tokens {
		m[t.node]++
	}
	return m
}
