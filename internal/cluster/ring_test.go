package cluster

import (
	"fmt"
	"testing"
)

func allAlive(string) bool { return true }

func TestRingDeterministicAndComplete(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r1 := newRing(nodes, 64)
	r2 := newRing([]string{"n3", "n1", "n2"}, 64) // order must not matter

	owners := make(map[string]int)
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("b11/0|%d", i)
		o := r1.lookup(key, allAlive)
		if o2 := r2.lookup(key, allAlive); o2 != o {
			t.Fatalf("key %s: ring order changed owner %s -> %s", key, o, o2)
		}
		owners[o]++
	}
	// Even with few vnodes the split should be in the same order of
	// magnitude per node; a node owning nothing means the ring is broken.
	for _, n := range nodes {
		if owners[n] < 100 {
			t.Fatalf("lopsided ring: %v", owners)
		}
	}
}

func TestRingFailoverAndReturn(t *testing.T) {
	nodes := []string{"n1", "n2", "n3"}
	r := newRing(nodes, 64)
	aliveNot := func(dead string) func(string) bool {
		return func(id string) bool { return id != dead }
	}
	moved := 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i)
		before := r.lookup(key, allAlive)
		during := r.lookup(key, aliveNot("n2"))
		if during == "n2" {
			t.Fatalf("key %s routed to a dead node", key)
		}
		if before != "n2" && during != before {
			t.Fatalf("key %s owned by live node %s moved to %s", key, before, during)
		}
		if before == "n2" {
			moved++
		}
		// When the node returns, every key snaps back to its home shard.
		if after := r.lookup(key, allAlive); after != before {
			t.Fatalf("key %s did not return home: %s -> %s", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: no key was owned by the dead node")
	}
}

func TestRingAllDeadFallsBack(t *testing.T) {
	r := newRing([]string{"n1", "n2"}, 8)
	if o := r.lookup("key", func(string) bool { return false }); o == "" {
		t.Fatal("lookup with all nodes dead returned nobody")
	}
}

func TestRingTokensPerNode(t *testing.T) {
	r := newRing([]string{"a", "b"}, 32)
	m := r.tokensPerNode()
	if m["a"] != 32 || m["b"] != 32 {
		t.Fatalf("shard map %v, want 32 tokens each", m)
	}
}
