package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"wcm3d/internal/service"
)

// Peer is one static cluster member: a stable node id and the base URL
// its API listens on.
type Peer struct {
	ID  string
	URL string
}

// ParsePeers parses the -peers flag: comma-separated id=url pairs, e.g.
//
//	n1=http://10.0.0.1:8080,n2=http://10.0.0.2:8080,n3=http://10.0.0.3:8080
//
// Ids must be unique and URLs absolute; trailing slashes are stripped.
func ParsePeers(s string) ([]Peer, error) {
	var peers []Peer
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, raw, ok := strings.Cut(part, "=")
		if !ok || id == "" || raw == "" {
			return nil, fmt.Errorf("cluster: bad peer %q, want id=url", part)
		}
		u, err := url.Parse(raw)
		if err != nil || !u.IsAbs() || u.Host == "" {
			return nil, fmt.Errorf("cluster: peer %s has invalid url %q", id, raw)
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate peer id %q", id)
		}
		seen[id] = true
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(raw, "/")})
	}
	if len(peers) == 0 {
		return nil, errors.New("cluster: no peers in list")
	}
	return peers, nil
}

// Options configures a Cluster. Svc, Self and Peers are required; Self
// must appear in Peers (its URL is what other nodes redirect to).
type Options struct {
	Self  string
	Peers []Peer
	Svc   *service.Service
	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
	// ProbeInterval is the liveness/load polling period (default 500ms).
	ProbeInterval time.Duration
	// DeadAfter is how many consecutive failed probes declare a peer dead
	// (default 3). Death triggers ReclaimStolen for jobs it held.
	DeadAfter int
	// StealInterval is the work-stealing polling period; 0 disables
	// stealing (ownership routing still applies).
	StealInterval time.Duration
	// StealBatch bounds how many jobs one steal request pulls (default 2).
	StealBatch int
	// VNodes is the virtual-token count per node on the hash ring
	// (default 64).
	VNodes int
	// HTTPTimeout bounds every peer call (default 5s).
	HTTPTimeout time.Duration
}

type peerState struct {
	id         string
	url        string
	alive      bool
	failures   int
	queueDepth int
}

// Cluster implements service.ClusterView over a static peer set: it owns
// the background probe and steal loops and the hash ring consulted by
// Route. Create with New, attach with service.AttachCluster, stop with
// Close.
type Cluster struct {
	opts  Options
	ring  *ring
	httpc *http.Client
	stop  chan struct{}
	wg    sync.WaitGroup

	mu    sync.Mutex
	peers map[string]*peerState
}

// New validates opts and starts the probe loop (and, when StealInterval
// > 0, the steal loop). Peers start out presumed alive: a booting fleet
// should route stably from the first request, and a genuinely down peer
// is declared dead after DeadAfter probes anyway.
func New(opts Options) (*Cluster, error) {
	if opts.Svc == nil {
		return nil, errors.New("cluster: Options.Svc is required")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 500 * time.Millisecond
	}
	if opts.DeadAfter <= 0 {
		opts.DeadAfter = 3
	}
	if opts.StealBatch <= 0 {
		opts.StealBatch = 2
	}
	if opts.VNodes <= 0 {
		opts.VNodes = 64
	}
	if opts.HTTPTimeout <= 0 {
		opts.HTTPTimeout = 5 * time.Second
	}
	c := &Cluster{
		opts:  opts,
		httpc: &http.Client{Timeout: opts.HTTPTimeout},
		stop:  make(chan struct{}),
		peers: make(map[string]*peerState),
	}
	ids := make([]string, 0, len(opts.Peers))
	for _, p := range opts.Peers {
		ids = append(ids, p.ID)
		c.peers[p.ID] = &peerState{id: p.ID, url: p.URL, alive: true}
	}
	if _, ok := c.peers[opts.Self]; !ok {
		return nil, fmt.Errorf("cluster: self id %q not in peer list", opts.Self)
	}
	c.ring = newRing(ids, opts.VNodes)
	if len(ids) > 1 {
		c.wg.Add(1)
		go c.probeLoop()
		if opts.StealInterval > 0 {
			c.wg.Add(1)
			go c.stealLoop()
		}
	}
	return c, nil
}

// Close stops the background loops and waits for them to exit. In-flight
// stolen jobs keep running on the service pool; their completion reports
// are attempted once without retry after Close.
func (c *Cluster) Close() {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	c.wg.Wait()
}

func (c *Cluster) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// dieKey is the ring key for a prepared die: the same (name, seed) pair
// the service's die cache is keyed on, so ownership and caching agree.
func dieKey(name string, seed int64) string {
	return name + "|" + strconv.FormatInt(seed, 10)
}

// Route implements service.ClusterView: the node owning (name, seed)
// under the current liveness view, with self always considered alive.
func (c *Cluster) Route(name string, seed int64) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.ring.lookup(dieKey(name, seed), func(id string) bool {
		if id == c.opts.Self {
			return true
		}
		p := c.peers[id]
		return p != nil && p.alive
	})
	return c.peers[owner].url, owner == c.opts.Self
}

// Info implements service.ClusterView: the membership snapshot served at
// GET /v1/cluster, rows sorted by peer id.
func (c *Cluster) Info() service.ClusterInfo {
	depth := c.opts.Svc.QueueDepth()
	c.mu.Lock()
	defer c.mu.Unlock()
	info := service.ClusterInfo{
		Self:        c.opts.Self,
		QueueDepth:  depth,
		ShardTokens: c.ring.tokensPerNode(),
	}
	for _, p := range c.opts.Peers {
		st := c.peers[p.ID]
		row := service.PeerInfo{ID: st.id, URL: st.url, Alive: st.alive, QueueDepth: st.queueDepth}
		if st.id == c.opts.Self {
			row.Self, row.Alive, row.QueueDepth = true, true, depth
		}
		info.Peers = append(info.Peers, row)
	}
	return info
}

// probeLoop polls every remote peer's GET /v1/cluster on a ticker,
// tracking liveness and queue depth. A peer crossing the DeadAfter
// threshold is declared dead: its hash-ring shards fail over (Route skips
// dead nodes) and any queued jobs it stole from this node are reclaimed.
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, p := range c.remotes() {
			info, err := c.fetchInfo(p.url)
			c.mu.Lock()
			st := c.peers[p.id]
			if err != nil {
				st.failures++
				if st.alive && st.failures >= c.opts.DeadAfter {
					st.alive = false
					c.mu.Unlock()
					c.logf("wcmd: cluster: peer %s dead after %d failed probes: %v", p.id, c.opts.DeadAfter, err)
					c.opts.Svc.ReclaimStolen(p.id)
					continue
				}
				c.mu.Unlock()
				continue
			}
			if !st.alive {
				c.logf("wcmd: cluster: peer %s is back", p.id)
			}
			st.alive, st.failures, st.queueDepth = true, 0, info.QueueDepth
			c.mu.Unlock()
		}
	}
}

// remotes snapshots every peer but self.
func (c *Cluster) remotes() []*peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*peerState, 0, len(c.peers)-1)
	for _, p := range c.opts.Peers {
		if p.ID != c.opts.Self {
			out = append(out, c.peers[p.ID])
		}
	}
	return out
}

func (c *Cluster) fetchInfo(baseURL string) (service.ClusterInfo, error) {
	var info service.ClusterInfo
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.HTTPTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/cluster", nil)
	if err != nil {
		return info, err
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("GET /v1/cluster: %s", resp.Status)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// stealLoop pulls queued work from the most loaded live peer whenever
// this node is idle. Stealing deliberately trades die-cache locality for
// tail latency: a stolen job may prepare a die outside its owner shard,
// which is why it only triggers when the local queue is empty.
func (c *Cluster) stealLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.StealInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		if c.opts.Svc.QueueDepth() > 0 {
			continue // local work first
		}
		victim := c.pickVictim()
		if victim == nil {
			continue
		}
		c.stealFrom(victim)
	}
}

// pickVictim chooses the live remote peer with the deepest last-probed
// queue, nil when nobody has queued work to give.
func (c *Cluster) pickVictim() *peerState {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *peerState
	for _, p := range c.opts.Peers {
		st := c.peers[p.ID]
		if st.id == c.opts.Self || !st.alive || st.queueDepth <= 0 {
			continue
		}
		if best == nil || st.queueDepth > best.queueDepth {
			best = st
		}
	}
	return best
}

// stealFrom pulls up to StealBatch jobs from victim and runs each on the
// local pool, reporting terminal results back via the completion
// endpoint. The victim journals the handout, so either side dying still
// re-runs the job somewhere.
func (c *Cluster) stealFrom(victim *peerState) {
	body, _ := json.Marshal(struct {
		Thief string `json:"thief"`
		Count int    `json:"count"`
	}{Thief: c.opts.Self, Count: c.opts.StealBatch})
	var out struct {
		Jobs []service.StolenJob `json:"jobs"`
	}
	if err := c.postJSON(victim.url+"/v1/cluster/steal", body, &out); err != nil {
		c.logf("wcmd: cluster: steal from %s failed: %v", victim.id, err)
		return
	}
	c.mu.Lock()
	victim.queueDepth -= len(out.Jobs)
	c.mu.Unlock()
	for _, sj := range out.Jobs {
		sj := sj
		vurl := victim.url
		done := func(st service.JobStatus) {
			c.reportCompletion(vurl, sj.ID, st)
		}
		if err := c.runStolen(sj.Request, done); err != nil {
			// Could not place the job locally (e.g. shutdown raced the
			// steal). The victim journaled the handout, so its next boot —
			// or our death being detected — re-runs it; nothing is lost,
			// but say so loudly because until then the job is parked.
			c.logf("wcmd: cluster: stolen job %s from %s not runnable locally: %v", sj.ID, victim.id, err)
		}
	}
	if n := len(out.Jobs); n > 0 {
		c.logf("wcmd: cluster: stole %d job(s) from %s", n, victim.id)
	}
}

// runStolen places one stolen job on the local pool, retrying brief
// queue-full rejections (we only steal when idle, so capacity normally
// exists; a race with local submissions resolves in a few ticks).
func (c *Cluster) runStolen(req service.JobRequest, done func(service.JobStatus)) error {
	var err error
	for i := 0; i < 50; i++ {
		if _, err = c.opts.Svc.RunStolen(req, done); err == nil || !errors.Is(err, service.ErrQueueFull) {
			return err
		}
		select {
		case <-c.stop:
			return err
		case <-time.After(100 * time.Millisecond):
		}
	}
	return err
}

// reportCompletion posts a stolen job's terminal result back to its
// victim, retrying transient failures with backoff. A report that never
// lands is safe — the victim reclaims the job when it declares this node
// dead, and first-terminal-wins drops whichever copy loses the race.
func (c *Cluster) reportCompletion(victimURL, id string, st service.JobStatus) {
	body, _ := json.Marshal(struct {
		State  string          `json:"state"`
		Error  string          `json:"error,omitempty"`
		Result *service.Report `json:"result,omitempty"`
	}{State: st.State, Error: st.Error, Result: st.Result})
	var out struct {
		Applied bool `json:"applied"`
	}
	backoff := 200 * time.Millisecond
	for attempt := 0; ; attempt++ {
		err := c.postJSON(victimURL+"/v1/cluster/complete/"+id, body, &out)
		if err == nil {
			if !out.Applied {
				c.logf("wcmd: cluster: completion for %s not applied (already terminal on victim)", id)
			}
			return
		}
		closing := false
		select {
		case <-c.stop:
			closing = true
		default:
		}
		if attempt >= 4 || closing {
			c.logf("wcmd: cluster: completion for %s undeliverable, victim will reclaim: %v", id, err)
			return
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

func (c *Cluster) postJSON(url string, body []byte, out any) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.HTTPTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(msg)))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

var _ service.ClusterView = (*Cluster)(nil)
