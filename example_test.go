package wcm3d_test

import (
	"fmt"
	"strings"

	"wcm3d"
)

// ExampleFullWrap shows the pre-reuse baseline: one dedicated wrapper cell
// per TSV.
func ExampleFullWrap() {
	n, _ := wcm3d.GenerateDie(wcm3d.Profile{
		Circuit: "demo", Gates: 120, ScanFFs: 8,
		InboundTSVs: 5, OutboundTSVs: 4, PIs: 4, POs: 2,
	}, 1)
	plan := wcm3d.FullWrap(n)
	fmt.Println("cells:", plan.AdditionalCells())
	fmt.Println("reused:", plan.ReusedFFs())
	fmt.Println("covered:", plan.Covered(n))
	// Output:
	// cells: 9
	// reused: 0
	// covered: true
}

// ExampleMinimize runs the paper's method on a small die and checks the
// plan's invariants.
func ExampleMinimize() {
	die, _ := wcm3d.PrepareDie(wcm3d.Profile{
		Circuit: "demo", Gates: 200, ScanFFs: 10,
		InboundTSVs: 6, OutboundTSVs: 6, PIs: 4, POs: 2,
	}, 1)
	res, _ := wcm3d.Minimize(die, wcm3d.MethodOurs, wcm3d.TightTiming)
	fullWrapCells := len(die.Netlist.InboundTSVs()) + len(die.Netlist.OutboundTSVs())
	fmt.Println("covers every TSV:", res.Assignment.Covered(die.Netlist))
	fmt.Println("beats full wrap:", res.AdditionalCells < fullWrapCells)
	viol, _, _ := wcm3d.CheckTiming(die, res.Assignment)
	fmt.Println("timing violation:", viol)
	// Output:
	// covers every TSV: true
	// beats full wrap: true
	// timing violation: false
}

// ExampleParseNetlist loads a die from the .bench dialect.
func ExampleParseNetlist() {
	src := `
INPUT(a)
TSV_IN(t0)
n1 = AND(a, t0)
q = DFF(n1)
OUTPUT(z) = q
TSV_OUT(u0) = n1
`
	n, _ := wcm3d.ParseNetlist("mini", strings.NewReader(src))
	fmt.Println("gates:", n.NumLogicGates())
	fmt.Println("inbound TSVs:", len(n.InboundTSVs()))
	fmt.Println("outbound TSVs:", len(n.OutboundTSVs()))
	// Output:
	// gates: 1
	// inbound TSVs: 1
	// outbound TSVs: 1
}
