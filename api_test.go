package wcm3d_test

// Integration tests against the public facade — the same surface the
// examples and downstream users consume.

import (
	"strings"
	"testing"

	"wcm3d"
)

func prepared(t *testing.T) *wcm3d.Die {
	t.Helper()
	d, err := wcm3d.PrepareDie(wcm3d.CircuitProfiles("b12")[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestProfilesSurface(t *testing.T) {
	if got := len(wcm3d.ITC99Profiles()); got != 24 {
		t.Errorf("profiles = %d, want 24", got)
	}
	if got := len(wcm3d.CircuitNames()); got != 6 {
		t.Errorf("circuits = %d, want 6", got)
	}
	if wcm3d.CircuitProfiles("nope") != nil {
		t.Error("unknown circuit must return nil")
	}
	if err := wcm3d.DefaultLibrary().Validate(); err != nil {
		t.Errorf("default library invalid: %v", err)
	}
}

func TestMinimizeAllMethods(t *testing.T) {
	d := prepared(t)
	nTSVs := len(d.Netlist.InboundTSVs()) + len(d.Netlist.OutboundTSVs())
	var cells = map[wcm3d.Method]int{}
	for _, m := range []wcm3d.Method{
		wcm3d.MethodFullWrap, wcm3d.MethodLi, wcm3d.MethodAgrawal, wcm3d.MethodOurs,
	} {
		res, err := wcm3d.Minimize(d, m, wcm3d.LooseTiming)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := res.Assignment.Validate(d.Netlist); err != nil {
			t.Fatalf("%v produced invalid plan: %v", m, err)
		}
		if !res.Assignment.Covered(d.Netlist) {
			t.Errorf("%v does not cover every TSV", m)
		}
		cells[m] = res.AdditionalCells
	}
	// The historical progression must hold: full wrap >= Li >= Agrawal,
	// and ours at least as good as the one-shot baseline.
	if cells[wcm3d.MethodFullWrap] != nTSVs {
		t.Errorf("full wrap cells = %d, want %d", cells[wcm3d.MethodFullWrap], nTSVs)
	}
	if cells[wcm3d.MethodLi] > cells[wcm3d.MethodFullWrap] {
		t.Error("Li must not exceed full wrap")
	}
	if cells[wcm3d.MethodAgrawal] > cells[wcm3d.MethodLi] {
		t.Error("multi-TSV sharing (Agrawal) must not lose to one-shot reuse (Li)")
	}
	if cells[wcm3d.MethodOurs] > cells[wcm3d.MethodLi] {
		t.Error("ours must not lose to the one-shot baseline")
	}
}

func TestMinimizeUnknownMethod(t *testing.T) {
	d := prepared(t)
	if _, err := wcm3d.Minimize(d, wcm3d.Method(99), wcm3d.TightTiming); err == nil {
		t.Error("unknown method must error")
	}
}

func TestTightTimingNeverViolates(t *testing.T) {
	d := prepared(t)
	res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		t.Fatal(err)
	}
	viol, wns, err := wcm3d.CheckTiming(d, res.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if viol {
		t.Errorf("ours under tight timing violates (wns %.1f)", wns)
	}
}

func TestEvaluateRoundTrip(t *testing.T) {
	d := prepared(t)
	res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		t.Fatal(err)
	}
	sa, err := wcm3d.EvaluateStuckAt(d, res.Assignment, wcm3d.ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Coverage < 0.85 || sa.Patterns == 0 {
		t.Errorf("stuck-at grade implausible: %+v", sa)
	}
	tr, err := wcm3d.EvaluateTransition(d, res.Assignment, wcm3d.ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Coverage <= 0 || tr.Patterns == 0 {
		t.Errorf("transition grade implausible: %+v", tr)
	}
	// Transition tests are two-vector: typically more patterns.
	if tr.Patterns < sa.Patterns {
		t.Logf("note: transition patterns %d < stuck-at %d (unusual but possible)", tr.Patterns, sa.Patterns)
	}
}

func TestParseAndPrepareCustomDie(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
TSV_IN(t0)
TSV_IN(t1)
q0 = DFF(n2)
q1 = DFF(n3)
n1 = AND(a, t0)
n2 = XOR(n1, q1)
n3 = NOR(t1, b)
n4 = OR(n2, n3)
OUTPUT(z) = n4
TSV_OUT(u0) = n1
TSV_OUT(u1) = n3
`
	n, err := wcm3d.ParseNetlist("api", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	d, err := wcm3d.PrepareParsed(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.LooseTiming)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Assignment.Covered(d.Netlist) {
		t.Error("custom die not fully covered")
	}
	sa, err := wcm3d.EvaluateStuckAt(d, res.Assignment, wcm3d.ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if sa.Coverage < 0.9 {
		t.Errorf("tiny wrapped die should test nearly completely, got %.3f", sa.Coverage)
	}
}

func TestOptionBuildersExposed(t *testing.T) {
	d := prepared(t)
	opts := wcm3d.OurOptions(d, wcm3d.TightTiming)
	opts.AllowOverlap = false
	res, err := wcm3d.MinimizeWith(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOverlapEdges() != 0 {
		t.Error("overlap disabled but overlap edges counted")
	}
	agr := wcm3d.AgrawalOptions(d, wcm3d.LooseTiming)
	if agr.AllowOverlap {
		t.Error("Agrawal options must not allow overlap")
	}
}

func TestMethodAndModeStrings(t *testing.T) {
	if wcm3d.MethodOurs.String() != "ours" || wcm3d.MethodAgrawal.String() != "agrawal" ||
		wcm3d.MethodLi.String() != "li" || wcm3d.MethodFullWrap.String() != "full-wrap" {
		t.Error("method names wrong")
	}
	if wcm3d.TightTiming.String() != "tight" || wcm3d.LooseTiming.String() != "loose" {
		t.Error("mode names wrong")
	}
}

func TestPartitionBondRoundTrip(t *testing.T) {
	mono, err := wcm3d.GenerateDie(wcm3d.Profile{
		Circuit: "mono", Gates: 300, ScanFFs: 20, PIs: 6, POs: 4,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := wcm3d.PartitionNetlist(mono, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dies) != 2 || res.CutNets == 0 {
		t.Fatalf("partition: %d dies, %d cut nets", len(res.Dies), res.CutNets)
	}
	stack, err := wcm3d.BondStack("stack", res.Dies)
	if err != nil {
		t.Fatal(err)
	}
	if len(stack.InboundTSVs()) != 0 {
		t.Error("fully bonded stack must have no floating pads")
	}
}

func TestBuildScanChainsFacade(t *testing.T) {
	d := prepared(t)
	res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := wcm3d.BuildScanChains(d, res.Assignment, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := len(d.Netlist.FlipFlops()) + res.AdditionalCells
	if plan.NumCells() != want {
		t.Errorf("chain cells = %d, want %d (FFs + dedicated cells)", plan.NumCells(), want)
	}
	if plan.TestCycles(100) <= 0 {
		t.Error("test cycles must be positive")
	}
}

func TestDiagnoseRoundTrip(t *testing.T) {
	d, err := wcm3d.PrepareDie(wcm3d.CircuitProfiles("b11")[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.LooseTiming)
	if err != nil {
		t.Fatal(err)
	}
	patterns, grade, err := wcm3d.GeneratePatterns(d, plan.Assignment, wcm3d.ReducedBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if grade.Coverage < 0.85 || len(patterns) == 0 {
		t.Fatalf("test set implausible: %d patterns, %.3f coverage", len(patterns), grade.Coverage)
	}
	// Inject a detectable defect, diagnose, expect an exact match
	// containing the truth.
	var truth wcm3d.Fault
	var syn *wcm3d.Syndrome
	for _, f := range d.StuckAt {
		s, err := wcm3d.SimulateDefect(d, plan.Assignment, f, patterns)
		if err != nil {
			t.Fatal(err)
		}
		if s.FailCount() > 0 {
			truth, syn = f, s
			break
		}
	}
	if syn == nil {
		t.Fatal("no detectable defect found")
	}
	ranked, err := wcm3d.Diagnose(d, plan.Assignment, patterns, syn)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 || !ranked[0].Exact() {
		t.Fatal("diagnosis found no exact explanation")
	}
	foundTruth := false
	for _, c := range ranked {
		if !c.Exact() {
			break
		}
		if c.Fault == truth {
			foundTruth = true
		}
	}
	if !foundTruth {
		t.Error("the injected defect is not among the exact matches")
	}
	if _, err := wcm3d.SuspectTSVs(d, plan.Assignment, ranked, 3); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleFacade(t *testing.T) {
	var stack []wcm3d.StackDie
	for _, p := range wcm3d.CircuitProfiles("b11")[:2] {
		d, err := wcm3d.PrepareDie(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := wcm3d.Minimize(d, wcm3d.MethodOurs, wcm3d.TightTiming)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := wcm3d.EvaluateStuckAt(d, res.Assignment, wcm3d.ReducedBudget(1))
		if err != nil {
			t.Fatal(err)
		}
		designs, err := wcm3d.EnumerateWrapperDesigns(d, res.Assignment, tb.Patterns, 8)
		if err != nil {
			t.Fatal(err)
		}
		if len(designs) == 0 || designs[0].Width != 1 {
			t.Fatalf("Pareto frontier must start at one wire: %+v", designs)
		}
		// Names left empty to exercise the profile-name default.
		stack = append(stack, wcm3d.StackDie{
			Die: d, Assignment: res.Assignment, Patterns: tb.Patterns,
		})
	}
	sched, err := wcm3d.Schedule(stack, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(); err != nil {
		t.Error(err)
	}
	if sched.MakespanCycles <= 0 || sched.MakespanCycles > sched.SerialCycles {
		t.Errorf("makespan %d vs serial %d", sched.MakespanCycles, sched.SerialCycles)
	}
	names := map[string]bool{}
	for _, sl := range sched.Slots {
		names[sl.Die] = true
	}
	if !names["b11/Die0"] || !names["b11/Die1"] {
		t.Errorf("slots not named after profiles: %v", names)
	}

	if _, err := wcm3d.Schedule(stack, 0); err == nil {
		t.Error("zero width must error")
	}
	if _, err := wcm3d.Schedule([]wcm3d.StackDie{{}}, 8); err == nil {
		t.Error("stack entry without a die must error")
	}
}
